"""Cross-engine equality, dispatch and horizon-cap tests.

The batched struct-of-arrays engine (:mod:`repro.simulator.batch`)
promises **bitwise-identical** :class:`TrialResult`s to the scalar
per-event loop for the same seeds.  These tests enforce that promise
across the whole Table-I catalog, every recheckpoint policy, the
>4096-failure stream-refill path, Weibull/trace failure sources,
``escalate`` restart semantics, silent errors, packed multi-scenario
universes (:func:`simulate_packed` and the ``execute_study`` fast
path), and the figure2/figure4 pipeline rows — plus the dispatch rules
of ``simulate_many`` and the accounting invariants both engines guard
internally.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CheckpointPlan, DauweModel
from repro.failures import FailureSpec
from repro.scenarios import ScenarioSpec
from repro.simulator import (
    BatchRequest,
    default_max_time,
    get_default_engine,
    set_default_engine,
    simulate_many,
    simulate_packed,
    simulate_trial,
    simulate_trials_batch,
    trial_seeds,
)
from repro.systems import TEST_SYSTEM_ORDER, get_system

_PLANS: dict[str, CheckpointPlan] = {}


def plan_for(name: str) -> CheckpointPlan:
    """The technique-optimized plan for a catalog system (memoized)."""
    if name not in _PLANS:
        _PLANS[name] = DauweModel(get_system(name)).optimize().plan
    return _PLANS[name]


def scalar_trials(system, plan, seeds, source_factory=None, **kwargs):
    """The ground truth: one scalar-engine run per seed sequence.

    Mirrors ``simulate_many``'s per-trial seeding exactly: the silent
    stream's generator is spawned from the trial's seed sequence
    (exactly once, *mutating* it — so silent-error parity tests must
    hand each engine its own freshly built ``trial_seeds`` list), the
    failure source is built from the trial's own generator.
    """
    out = []
    for ss in seeds:
        silent_rng = (
            np.random.default_rng(ss.spawn(1)[0])
            if kwargs.get("silent_errors") is not None
            else None
        )
        rng = np.random.default_rng(ss)
        source = source_factory(rng) if source_factory is not None else None
        out.append(
            simulate_trial(
                system, plan, rng=rng, source=source,
                silent_rng=silent_rng, **kwargs,
            )
        )
    return out


def weibull_factory(system, shape=0.7):
    """The registry's Weibull factory (carries a ``batch_stream``)."""
    return FailureSpec("weibull", {"shape": shape}).source_factory(system)


def trace_factory(system, events=64, spacing=0.9):
    """A deterministic replay trace sized to ``system``'s failure load."""
    times = tuple((i + 1) * spacing * system.mtbf for i in range(events))
    sevs = tuple(
        (i % len(system.severity_probabilities)) + 1 for i in range(events)
    )
    return FailureSpec(
        "trace", {"times": times, "severities": sevs}
    ).source_factory(system)


@pytest.fixture
def restore_engine():
    previous = get_default_engine()
    yield
    set_default_engine(previous)


class TestCrossEngineEquality:
    """batch == scalar, field for field, bit for bit."""

    @pytest.mark.parametrize("name", TEST_SYSTEM_ORDER)
    def test_catalog_systems_bitwise_equal(self, name):
        system = get_system(name)
        plan = plan_for(name)
        seeds = trial_seeds(12345, 16)
        batch = simulate_trials_batch(system, plan, seeds)
        assert batch == scalar_trials(system, plan, seeds)

    @pytest.mark.parametrize("recheckpoint", ["free", "paid", "skip"])
    @pytest.mark.parametrize("cac", [False, True])
    def test_recheckpoint_policies(self, recheckpoint, cac):
        # A shortened MTBF forces frequent rollbacks past completed
        # positions, so the redo paths (restore vs re-pay vs skip) all run.
        system = get_system("B").with_mtbf(30.0)
        plan = plan_for("B")
        seeds = trial_seeds(7, 12)
        kwargs = dict(recheckpoint=recheckpoint, checkpoint_at_completion=cac)
        batch = simulate_trials_batch(system, plan, seeds, **kwargs)
        assert batch == scalar_trials(system, plan, seeds, **kwargs)

    def test_stream_refill_beyond_4096_failures(self):
        # The Figure-4 failure storm: thousands of failures per trial, so
        # per-trial RNG batches refill (the carry must chain bitwise).
        system = get_system("B").with_mtbf(3.0).with_top_level_cost(40.0)
        plan = CheckpointPlan((1, 2, 3, 4), 1.0, (1, 1, 12))
        seeds = trial_seeds(11, 4)
        batch = simulate_trials_batch(system, plan, seeds, max_time=5000.0)
        scalar = scalar_trials(system, plan, seeds, max_time=5000.0)
        assert batch == scalar
        assert all(r.total_failures > 500 for r in scalar)

    def test_figure2_rows_engine_independent(self, restore_engine):
        from repro.experiments import figure2

        kwargs = dict(
            trials=8, seed=0, systems=("M", "B", "D4"),
            techniques=("dauwe", "daly"),
        )
        set_default_engine("scalar")
        scalar_rows = figure2.run(**kwargs).rows
        set_default_engine("batch")
        batch_rows = figure2.run(**kwargs).rows
        assert batch_rows == scalar_rows

    def test_figure4_rows_engine_independent(self, restore_engine):
        from repro.experiments import figure4

        kwargs = dict(trials=5, seed=0, techniques=("dauwe",))
        set_default_engine("scalar")
        scalar_rows = figure4.run(**kwargs).rows
        set_default_engine("batch")
        batch_rows = figure4.run(**kwargs).rows
        assert batch_rows == scalar_rows


class TestDispatch:
    """simulate_many's engine parameter: selection, fallback, validation."""

    def test_engines_agree_through_simulate_many(self):
        system = get_system("D4")
        plan = plan_for("D4")
        runs = {
            eng: simulate_many(
                system, plan, trials=16, seed=3, engine=eng, return_trials=True
            )
            for eng in ("scalar", "batch", "auto")
        }
        assert runs["batch"][1] == runs["scalar"][1] == runs["auto"][1]
        assert np.array_equal(
            runs["batch"][0].efficiencies, runs["scalar"][0].efficiencies
        )

    def test_batch_rejects_opaque_source_factory(self):
        # A raw closure gives the engine no batch_stream descriptor to
        # reproduce the draw order from, so explicit "batch" is a loud
        # error (and "auto" a warned scalar fallback) — not a guess.
        with pytest.raises(ValueError, match="batch_stream"):
            simulate_many(
                get_system("M"), plan_for("M"), trials=2, seed=0,
                engine="batch",
                source_factory=lambda rng: None,
            )

    def test_batch_runs_escalate(self):
        system, plan = get_system("B"), plan_for("B")
        batch = simulate_many(
            system, plan, trials=8, seed=2, engine="batch",
            restart_semantics="escalate", return_trials=True,
        )[1]
        scalar = simulate_many(
            system, plan, trials=8, seed=2, engine="scalar",
            restart_semantics="escalate", return_trials=True,
        )[1]
        assert batch == scalar

    def test_auto_batches_registry_sources(self):
        # The registry's weibull/trace factories expose batch_stream, so
        # "auto" no longer routes them to the scalar loop.
        from repro.simulator.run import _resolve_engine

        system = get_system("B")
        assert _resolve_engine("auto", "retry", weibull_factory(system), 10**6)
        assert _resolve_engine("auto", "retry", trace_factory(system), 10**6)
        assert not _resolve_engine("auto", "retry", lambda rng: None, 10**6)

    def test_auto_min_trials_override(self):
        from repro.simulator.run import (
            _resolve_engine,
            get_auto_min_trials,
            set_auto_min_trials,
        )

        previous = set_auto_min_trials(7)
        try:
            assert get_auto_min_trials() == 7
            assert _resolve_engine("auto", "retry", None, 7) is True
            assert _resolve_engine("auto", "retry", None, 6) is False
        finally:
            set_auto_min_trials(previous)
        assert get_auto_min_trials() == previous

    def test_auto_width_threshold(self):
        # "auto" only pays for lockstep overhead when the run is wide
        # enough to amortize it; explicit "batch" ignores the threshold.
        from repro.simulator.run import _AUTO_MIN_TRIALS, _resolve_engine

        assert _resolve_engine("auto", "retry", None, _AUTO_MIN_TRIALS) is True
        assert _resolve_engine("auto", "retry", None, _AUTO_MIN_TRIALS - 1) is False
        assert _resolve_engine("batch", "retry", None, 1) is True
        assert _resolve_engine("scalar", "retry", None, 10**6) is False

    def test_auto_crossover_default_is_96(self, monkeypatch):
        # The built-in crossover is the bench-measured value for the
        # reference container (``bench --crossover`` recommends 96):
        # 96 trials dispatch to batch, 95 stay scalar.  Pinning the
        # boundary keeps the default honest against accidental drift.
        from repro.simulator.run import (
            _auto_min_trials_default,
            _resolve_engine,
            set_auto_min_trials,
        )

        monkeypatch.delenv("REPRO_AUTO_MIN_TRIALS", raising=False)
        assert _auto_min_trials_default() == 96
        previous = set_auto_min_trials(None)
        try:
            assert _resolve_engine("auto", "retry", None, 96) is True
            assert _resolve_engine("auto", "retry", None, 95) is False
        finally:
            set_auto_min_trials(previous)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine must be one of"):
            simulate_many(
                get_system("M"), plan_for("M"), trials=2, seed=0, engine="bogus"
            )

    def test_default_engine_roundtrip(self, restore_engine):
        previous = set_default_engine("scalar")
        assert previous in ("auto", "scalar", "batch")
        assert get_default_engine() == "scalar"
        with pytest.raises(ValueError, match="engine must be one of"):
            set_default_engine("bogus")

    def test_batch_entry_point_validation(self):
        seeds = trial_seeds(0, 2)
        with pytest.raises(ValueError, match="restart_semantics"):
            simulate_trials_batch(
                get_system("M"), plan_for("M"), seeds,
                restart_semantics="bogus",
            )
        with pytest.raises(ValueError, match="recheckpoint"):
            simulate_trials_batch(
                get_system("M"), plan_for("M"), seeds, recheckpoint="bogus"
            )

    def test_scenario_spec_validates_engine(self):
        spec = ScenarioSpec(system=get_system("M"), simulate={"engine": "batch"})
        assert spec.simulate["engine"] == "batch"
        with pytest.raises(ValueError, match="simulate.engine"):
            ScenarioSpec(system=get_system("M"), simulate={"engine": "bogus"})

    def test_scheduler_worker_init_mirrors_engine(self, restore_engine, monkeypatch):
        # The pool initializer must install the parent's engine default
        # (spawn-started workers would otherwise reset to "auto").
        from repro.exec import scheduler as scheduler_mod
        from repro.exec.cache import get_active_cache, set_active_cache
        from repro.simulator.run import (
            get_auto_min_trials,
            set_auto_min_trials,
            set_inline_mode,
        )

        monkeypatch.setattr(scheduler_mod, "_IN_SCENARIO_WORKER", False)
        previous_cache = get_active_cache()
        previous_threshold = get_auto_min_trials()
        try:
            scheduler_mod._worker_init(None, False, "scalar", 33)
            assert get_default_engine() == "scalar"
            assert get_auto_min_trials() == 33
        finally:
            set_auto_min_trials(previous_threshold)
            set_inline_mode(False)
            set_active_cache(previous_cache)


class TestFullCoverageParity:
    """Weibull/trace sources and escalate semantics: batch == scalar,
    bit for bit, across the catalog and the stress regimes."""

    @pytest.mark.parametrize("name", TEST_SYSTEM_ORDER)
    @pytest.mark.parametrize("semantics", ["retry", "escalate"])
    def test_weibull_parity_catalog(self, name, semantics):
        system = get_system(name)
        plan = plan_for(name)
        factory = weibull_factory(system)
        seeds = trial_seeds(101, 10)
        batch = simulate_trials_batch(
            system, plan, seeds,
            stream=factory.batch_stream, restart_semantics=semantics,
        )
        assert batch == scalar_trials(
            system, plan, seeds,
            source_factory=factory, restart_semantics=semantics,
        )

    @pytest.mark.parametrize("shape", [0.5, 1.5])
    @pytest.mark.parametrize("semantics", ["retry", "escalate"])
    def test_weibull_shapes_stress_regime(self, shape, semantics):
        # Infant-mortality (0.5) and wear-out (1.5) hazards against a
        # shortened MTBF: failure storms, deep rollbacks, paid redos.
        system = get_system("D4").with_mtbf(40.0)
        plan = plan_for("D4")
        factory = weibull_factory(system, shape=shape)
        seeds = trial_seeds(77, 8)
        kwargs = dict(restart_semantics=semantics, recheckpoint="paid")
        batch = simulate_trials_batch(
            system, plan, seeds, stream=factory.batch_stream, **kwargs
        )
        assert batch == scalar_trials(
            system, plan, seeds, source_factory=factory, **kwargs
        )

    @pytest.mark.parametrize("semantics", ["retry", "escalate"])
    def test_trace_parity(self, semantics):
        system = get_system("D4")
        plan = plan_for("D4")
        factory = trace_factory(system)
        seeds = trial_seeds(5, 8)
        batch = simulate_trials_batch(
            system, plan, seeds,
            stream=factory.batch_stream, restart_semantics=semantics,
        )
        scalar = scalar_trials(
            system, plan, seeds,
            source_factory=factory, restart_semantics=semantics,
        )
        assert batch == scalar
        assert any(r.total_failures > 0 for r in scalar)

    def test_trace_exhaustion_runs_failure_free_tail(self):
        # A trace shorter than the run: after the last replayed event
        # both engines must coast to completion with no further failures.
        system = get_system("B")
        plan = plan_for("B")
        factory = trace_factory(system, events=2, spacing=0.3)
        seeds = trial_seeds(3, 6)
        batch = simulate_trials_batch(
            system, plan, seeds, stream=factory.batch_stream
        )
        scalar = scalar_trials(system, plan, seeds, source_factory=factory)
        assert batch == scalar
        assert all(r.completed and r.total_failures <= 2 for r in scalar)

    @pytest.mark.parametrize("name", TEST_SYSTEM_ORDER)
    def test_escalate_parity_catalog(self, name):
        system = get_system(name)
        plan = plan_for(name)
        seeds = trial_seeds(2024, 12)
        batch = simulate_trials_batch(
            system, plan, seeds, restart_semantics="escalate"
        )
        assert batch == scalar_trials(
            system, plan, seeds, restart_semantics="escalate"
        )

    @pytest.mark.parametrize("semantics", ["retry", "escalate"])
    def test_silent_errors_parity(self, semantics):
        # Fresh seed lists per engine: the scalar reference *spawns* the
        # silent stream's child from each trial's SeedSequence, which
        # mutates it — reuse would shift the batch engine's streams.
        system = get_system("D4")
        plan = plan_for("D4")
        silent = {
            "mtbf": system.mtbf * 2.0,
            "verify_cost": 3.0,
            "detection_latency": 45.0,
        }
        kwargs = dict(restart_semantics=semantics, silent_errors=silent)
        batch = simulate_trials_batch(
            system, plan, trial_seeds(8, 10), **kwargs
        )
        assert batch == scalar_trials(
            system, plan, trial_seeds(8, 10), **kwargs
        )


class TestPackedUniverse:
    """simulate_packed: one struct-of-arrays universe over heterogeneous
    scenarios == per-request batch calls == the scalar ground truth."""

    def _requests(self):
        # Deliberately heterogeneous: different systems (different level
        # counts and tables), semantics, redo policies, failure sources
        # and silent-error settings in one universe.
        b, d4, m = get_system("B"), get_system("D4"), get_system("M")
        wb = weibull_factory(d4)
        return [
            dict(system=b, plan=plan_for("B"), n=40, seed=1, kwargs={}),
            dict(
                system=d4, plan=plan_for("D4"), n=25, seed=2,
                factory=wb,
                kwargs=dict(restart_semantics="escalate",
                            recheckpoint="paid"),
            ),
            dict(
                system=m, plan=plan_for("M"), n=33, seed=3,
                kwargs=dict(silent_errors={
                    "mtbf": m.mtbf, "verify_cost": 1.0,
                    "detection_latency": 20.0,
                }),
            ),
        ]

    def test_packed_matches_solo_and_scalar(self):
        specs = self._requests()
        packed = simulate_packed(
            [
                BatchRequest(
                    system=s["system"], plan=s["plan"],
                    seed_seqs=trial_seeds(s["seed"], s["n"]),
                    stream=(
                        s["factory"].batch_stream if "factory" in s else None
                    ),
                    **s["kwargs"],
                )
                for s in specs
            ]
        )
        for got, s in zip(packed, specs):
            solo = simulate_trials_batch(
                s["system"], s["plan"], trial_seeds(s["seed"], s["n"]),
                stream=s["factory"].batch_stream if "factory" in s else None,
                **s["kwargs"],
            )
            scalar = scalar_trials(
                s["system"], s["plan"], trial_seeds(s["seed"], s["n"]),
                source_factory=s.get("factory"), **s["kwargs"],
            )
            assert got == solo
            assert got == scalar

    def test_single_request_pack_is_the_batch_entry_point(self):
        system, plan = get_system("B"), plan_for("B")
        [packed] = simulate_packed(
            [BatchRequest(system=system, plan=plan,
                          seed_seqs=trial_seeds(4, 12))]
        )
        assert packed == simulate_trials_batch(
            system, plan, trial_seeds(4, 12)
        )

    def test_study_packed_path_matches_per_scenario(self, restore_engine):
        # The execute_study fast path: outcomes must be bitwise equal to
        # the scalar per-scenario pipeline, and the record must carry
        # the packed_simulate breadcrumb (auto run) / not (scalar run).
        from repro.scenarios import StudySpec, execute_study

        study = StudySpec(
            study_id="packed-regression",
            seed=11,
            scenarios=tuple(
                ScenarioSpec(
                    system=get_system(name), technique=tech, trials=12,
                    simulate=simulate,
                )
                for name, tech, simulate in (
                    ("M", "dauwe", {}),
                    ("B", "daly", {"restart_semantics": "escalate"}),
                    ("B", "dauwe", {"recheckpoint": "paid"}),
                )
            ),
        )
        set_default_engine("auto")
        packed_run = execute_study(study)
        set_default_engine("scalar")
        scalar_run = execute_study(study)
        assert packed_run.outcomes == scalar_run.outcomes
        packed_events = [
            e["type"] for e in packed_run.record.resilience["events"]
        ]
        assert "packed_simulate" in packed_events
        assert "packed_fallback" not in packed_events
        scalar_events = [
            e["type"] for e in scalar_run.record.resilience["events"]
        ]
        assert "packed_simulate" not in scalar_events


class TestAccountingInvariants:
    """Property sweep: both engines' internal guards plus the observable
    identities (categories sum to total time; the work bucket is the
    retained progress) across seeds and systems."""

    @pytest.mark.parametrize("name", ["M", "B", "D4", "D8"])
    @pytest.mark.parametrize("seed", [0, 17, 404])
    def test_breakdown_identities_both_engines(self, name, seed):
        system = get_system(name)
        plan = plan_for(name)
        seeds = trial_seeds(seed, 4)
        # Both calls run the engines' compute_time == work + rework guard;
        # a violation raises RuntimeError instead of returning.
        for r in simulate_trials_batch(system, plan, seeds) + scalar_trials(
            system, plan, seeds
        ):
            assert r.times.total() == pytest.approx(r.total_time, rel=1e-9)
            assert r.times.work == r.work_done
            assert 0.0 <= r.work_done <= system.baseline_time + 1e-6
            if r.completed:
                assert r.work_done == pytest.approx(system.baseline_time)


class TestHorizonCap:
    """default_max_time / max_time paths: hopeless plans stop at the cap
    and report the rolled-back work position."""

    def _hopeless(self):
        # MTBF of one minute against multi-minute restarts: recovery
        # essentially never succeeds, so the cap fires mid-recovery.
        system = (
            get_system("B")
            .with_baseline_time(100.0)
            .with_mtbf(1.0)
            .with_top_level_cost(60.0)
        )
        plan = CheckpointPlan((1, 2, 3, 4), 1.0, (1, 1, 12))
        return system, plan

    def test_cap_mid_recovery_both_engines(self):
        system, plan = self._hopeless()
        seeds = trial_seeds(5, 6)
        batch = simulate_trials_batch(system, plan, seeds, max_time=50.0)
        scalar = scalar_trials(system, plan, seeds, max_time=50.0)
        assert batch == scalar
        for r in scalar:
            assert not r.completed
            assert r.total_time >= 50.0
            assert r.restarts_failed > 0
            # The reported work is the rolled-back position (acct.work is
            # set from it), never credit for progress lost to the failure.
            assert r.times.work == r.work_done
            assert r.work_done < system.baseline_time

    def test_default_cap_applies_when_unset(self):
        system, plan = self._hopeless()
        cap = default_max_time(system)
        assert cap == max(15.0 * 100.0, 100.0 + 300.0 * 1.0)
        seeds = trial_seeds(9, 2)
        batch = simulate_trials_batch(system, plan, seeds)
        scalar = scalar_trials(system, plan, seeds)
        assert batch == scalar
        for r in scalar:
            assert not r.completed
            assert r.total_time >= cap
