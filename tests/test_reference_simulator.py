"""Cross-validation: fast engine vs. DES reference, trace for trace."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CheckpointPlan
from repro.failures import TraceFailureSource
from repro.simulator import simulate_trial
from repro.simulator.reference import simulate_trial_reference
from repro.systems import SystemSpec, get_system


def spec2():
    return SystemSpec(
        name="x2",
        mtbf=40.0,
        level_probabilities=(0.75, 0.25),
        checkpoint_times=(0.8, 3.0),
        baseline_time=60.0,
    )


def spec3():
    return SystemSpec(
        name="x3",
        mtbf=25.0,
        level_probabilities=(0.5, 0.3, 0.2),
        checkpoint_times=(0.4, 1.5, 5.0),
        baseline_time=90.0,
    )


def random_trace(rng, rate, num_sev, horizon):
    t, times, sevs = 0.0, [], []
    while True:
        t += rng.exponential(1.0 / rate)
        if t > horizon:
            return times, sevs
        times.append(t)
        sevs.append(int(rng.integers(1, num_sev + 1)))


def assert_results_equal(a, b):
    assert a.total_time == pytest.approx(b.total_time, rel=1e-9)
    assert a.work_done == pytest.approx(b.work_done, rel=1e-9)
    assert a.completed == b.completed
    assert a.failures_by_severity == b.failures_by_severity
    assert a.checkpoints_completed == b.checkpoints_completed
    assert a.checkpoints_failed == b.checkpoints_failed
    assert a.restarts_completed == b.restarts_completed
    assert a.restarts_failed == b.restarts_failed
    assert a.scratch_restarts == b.scratch_restarts
    for f in dataclasses.fields(a.times):
        assert getattr(a.times, f.name) == pytest.approx(
            getattr(b.times, f.name), abs=1e-9
        ), f.name


CASES = [
    (spec2(), CheckpointPlan((1, 2), 4.0, (2,))),
    (spec2(), CheckpointPlan((1,), 4.0)),
    (spec2(), CheckpointPlan((2,), 7.0)),
    (spec3(), CheckpointPlan((1, 2, 3), 3.0, (1, 2))),
    (spec3(), CheckpointPlan((1, 2), 3.0, (3,))),
    (spec3(), CheckpointPlan((2, 3), 5.0, (2,))),
]


class TestTraceEquivalence:
    @pytest.mark.parametrize("case", range(len(CASES)))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_identical_on_random_traces(self, case, seed):
        spec, plan = CASES[case]
        rng = np.random.default_rng(seed * 100 + case)
        times, sevs = random_trace(
            rng, spec.failure_rate, spec.num_levels, horizon=2000.0
        )
        fast = simulate_trial(
            spec, plan, source=TraceFailureSource(times, sevs), max_time=1500.0
        )
        ref = simulate_trial_reference(
            spec, plan, source=TraceFailureSource(times, sevs), max_time=1500.0
        )
        assert_results_equal(fast, ref)

    @pytest.mark.parametrize("semantics", ["retry", "escalate"])
    def test_identical_under_both_restart_semantics(self, semantics):
        spec, plan = CASES[3]
        rng = np.random.default_rng(77)
        times, sevs = random_trace(rng, 0.2, spec.num_levels, horizon=3000.0)
        kw = dict(max_time=2000.0, restart_semantics=semantics)
        fast = simulate_trial(spec, plan, source=TraceFailureSource(times, sevs), **kw)
        ref = simulate_trial_reference(
            spec, plan, source=TraceFailureSource(times, sevs), **kw
        )
        assert_results_equal(fast, ref)

    def test_identical_with_end_checkpoint(self):
        spec = spec2()
        plan = CheckpointPlan((1, 2), 5.0, (1,))  # position 60 == T_B (L2)
        rng = np.random.default_rng(5)
        times, sevs = random_trace(rng, 0.05, 2, horizon=500.0)
        kw = dict(checkpoint_at_completion=True)
        fast = simulate_trial(spec, plan, source=TraceFailureSource(times, sevs), **kw)
        ref = simulate_trial_reference(
            spec, plan, source=TraceFailureSource(times, sevs), **kw
        )
        assert_results_equal(fast, ref)

    def test_failure_free_equivalence(self):
        for spec, plan in CASES:
            fast = simulate_trial(spec, plan, source=TraceFailureSource([], []))
            ref = simulate_trial_reference(spec, plan, source=TraceFailureSource([], []))
            assert_results_equal(fast, ref)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_equivalence_on_d1(self, seed):
        spec = get_system("D1").with_baseline_time(120.0)
        plan = CheckpointPlan((1, 2), 6.0, (2,))
        rng = np.random.default_rng(seed)
        times, sevs = random_trace(rng, spec.failure_rate, 2, horizon=1000.0)
        fast = simulate_trial(
            spec, plan, source=TraceFailureSource(times, sevs), max_time=800.0
        )
        ref = simulate_trial_reference(
            spec, plan, source=TraceFailureSource(times, sevs), max_time=800.0
        )
        assert_results_equal(fast, ref)

    def test_rng_driven_paths_statistically_close(self):
        # Without traces the two engines draw differently shaped RNG
        # streams; only distributions must agree.
        spec, plan = CASES[0]
        fast = [
            simulate_trial(spec, plan, rng=np.random.default_rng(s)).efficiency
            for s in range(60)
        ]
        ref = [
            simulate_trial_reference(
                spec, plan, rng=np.random.default_rng(1000 + s)
            ).efficiency
            for s in range(60)
        ]
        assert np.mean(fast) == pytest.approx(np.mean(ref), abs=0.03)
