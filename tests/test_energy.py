"""Tests for the energy-accounting extension (after [19])."""

from __future__ import annotations

import pytest

from repro.core import CheckpointPlan, DauweModel
from repro.simulator import TimeBreakdown, simulate_trial
from repro.simulator.energy import (
    EnergyReport,
    PowerProfile,
    energy_breakdown,
    optimize_for_energy,
    predicted_energy,
)
from repro.systems import get_system


class TestPowerProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerProfile(compute_w=0.0)
        with pytest.raises(ValueError):
            PowerProfile(restart_w=-5.0)

    def test_category_mapping(self):
        p = PowerProfile(compute_w=100.0, checkpoint_w=70.0, restart_w=60.0)
        assert p.category_power("work") == 100.0
        assert p.category_power("rework_restart") == 100.0
        assert p.category_power("failed_checkpoint") == 70.0
        assert p.category_power("restart") == 60.0
        with pytest.raises(KeyError):
            p.category_power("naptime")


class TestEnergyBreakdown:
    def test_hand_computed(self):
        # 60 min work @100W + 30 min ckpt @70W = 100Wh + 35Wh = 0.135 kWh
        times = TimeBreakdown(work=60.0, checkpoint=30.0)
        rep = energy_breakdown(times, PowerProfile(100.0, 70.0, 70.0))
        assert rep.total_kwh == pytest.approx(0.135)
        assert rep.useful_kwh == pytest.approx(0.1)
        assert rep.energy_efficiency == pytest.approx(0.1 / 0.135)

    def test_energy_delay_product(self):
        rep = EnergyReport(total_kwh=2.0, useful_kwh=1.0, per_category_kwh={})
        assert rep.energy_delay_product(120.0) == pytest.approx(4.0)

    def test_zero_total(self):
        rep = EnergyReport(total_kwh=0.0, useful_kwh=0.0, per_category_kwh={})
        assert rep.energy_efficiency == 0.0

    def test_simulated_trial_energy(self):
        spec = get_system("D1")
        plan = CheckpointPlan((1, 2), 6.0, (2,))
        r = simulate_trial(spec, plan, rng=1)
        rep = energy_breakdown(r.times, PowerProfile())
        assert rep.total_kwh > 0
        assert 0 < rep.energy_efficiency <= 1.0
        # energy efficiency is bounded by time efficiency scaled by the
        # power ratio; with equal powers they coincide
        equal = energy_breakdown(r.times, PowerProfile(90.0, 90.0, 90.0))
        assert equal.energy_efficiency == pytest.approx(r.efficiency, rel=1e-9)


class TestPredictedEnergy:
    def test_matches_manual_sum(self):
        spec = get_system("D2")
        model = DauweModel(spec)
        plan = CheckpointPlan((1, 2), 5.0, (2,))
        profile = PowerProfile(100.0, 50.0, 60.0)
        kwh = predicted_energy(model, plan, profile)
        bd = model.predict_breakdown(plan)
        manual = sum(
            minutes * profile.category_power(name) / 60000.0
            for name, minutes in bd.items()
            if name != "total"
        )
        assert kwh == pytest.approx(manual, rel=1e-12)

    def test_equal_powers_proportional_to_time(self):
        spec = get_system("D2")
        model = DauweModel(spec)
        plan = CheckpointPlan((1, 2), 5.0, (2,))
        kwh = predicted_energy(model, plan, PowerProfile(60.0, 60.0, 60.0))
        assert kwh == pytest.approx(model.predict_time(plan) * 60.0 / 60000.0)


class TestEnergyOptimization:
    def test_equal_powers_reproduce_time_optimum(self):
        spec = get_system("D4")
        model = DauweModel(spec)
        time_opt = model.optimize()
        energy_opt = optimize_for_energy(model, PowerProfile(80.0, 80.0, 80.0))
        assert energy_opt.plan.levels == time_opt.plan.levels
        assert energy_opt.plan.counts == time_opt.plan.counts
        assert energy_opt.plan.tau0 == pytest.approx(time_opt.plan.tau0, rel=0.02)

    def test_cheap_checkpoints_shift_intervals_down(self):
        # When checkpointing draws far less power than compute, the energy
        # optimum checkpoints at least as often as the time optimum.
        spec = get_system("D4")
        model = DauweModel(spec)
        time_opt = model.optimize()
        energy_opt = optimize_for_energy(
            model, PowerProfile(compute_w=120.0, checkpoint_w=20.0, restart_w=20.0)
        )
        assert energy_opt.plan.tau0 <= time_opt.plan.tau0 * 1.05
        # and its time-side prediction can't beat the true time optimum
        assert energy_opt.predicted_time >= time_opt.predicted_time - 1e-9

    def test_result_fields(self):
        spec = get_system("D1")
        model = DauweModel(spec)
        res = optimize_for_energy(model, PowerProfile())
        assert res.predicted_energy_kwh > 0
        assert 0 < res.predicted_efficiency <= 1.0
        assert res.predicted_time > spec.baseline_time
