"""Trace-driven tests of the trial engine: hand-computed executions.

Every test here feeds the simulator an explicit failure trace and checks
the resulting timeline event by event, pinning the semantics the paper
states (Sections II-B, IV-B, IV-D, IV-F, IV-G).
"""

from __future__ import annotations

import math

import pytest

from repro.core import CheckpointPlan
from repro.failures import TraceFailureSource
from repro.simulator import simulate_trial
from repro.systems import SystemSpec


def spec2(**kw):
    base = dict(
        name="t2",
        mtbf=1000.0,
        level_probabilities=(0.5, 0.5),
        checkpoint_times=(1.0, 3.0),
        baseline_time=20.0,
    )
    base.update(kw)
    return SystemSpec(**base)


def run(spec, plan, trace, **kw):
    src = TraceFailureSource([t for t, _ in trace], [s for _, s in trace])
    return simulate_trial(spec, plan, source=src, **kw)


PLAN2 = CheckpointPlan((1, 2), tau0=5.0, counts=(1,))  # ckpts at 5(L1),10(L2),15(L1)


class TestFailureFree:
    def test_timeline(self):
        # work 5 | d1 | work 5 | d2 | work 5 | d1 | work 5 -> done (no final ckpt)
        r = run(spec2(), PLAN2, [])
        assert r.completed
        assert r.total_time == pytest.approx(20 + 1 + 3 + 1)
        assert r.checkpoints_completed == 3
        assert r.times.checkpoint == pytest.approx(5.0)
        assert r.times.work == pytest.approx(20.0)
        assert r.total_failures == 0
        assert r.efficiency == pytest.approx(20.0 / 25.0)

    def test_checkpoint_at_completion(self):
        # position 20 == T_B is a level-2 position (m=4); taken when asked.
        r = run(spec2(), PLAN2, [], checkpoint_at_completion=True)
        assert r.completed
        assert r.checkpoints_completed == 4
        assert r.total_time == pytest.approx(20 + 1 + 3 + 1 + 3)

    def test_tau_not_dividing_baseline(self):
        plan = CheckpointPlan((1, 2), tau0=7.0, counts=(1,))  # 7(L1), 14(L2), 21>20
        r = run(spec2(), plan, [])
        assert r.completed
        assert r.checkpoints_completed == 2
        assert r.total_time == pytest.approx(20 + 1 + 3)

    def test_single_level_plan(self):
        plan = CheckpointPlan.single_level(2, 8.0)  # ckpts at 8, 16
        r = run(spec2(), plan, [])
        assert r.total_time == pytest.approx(20 + 2 * 3)


class TestFailuresDuringCompute:
    def test_severity1_rolls_back_to_last_checkpoint(self):
        # Failure at t=8.0: inside second compute segment (work 5..10,
        # runs t=6..11 after the 1-min L1 ckpt).  Work at failure: 5+2=7.
        # Restart from L1@5 costs R1=1; recompute 2 lost minutes.
        r = run(spec2(), PLAN2, [(8.0, 1)])
        assert r.completed
        assert r.restarts_completed == 1
        assert r.times.restart == pytest.approx(1.0)
        assert r.times.rework_compute == pytest.approx(2.0)
        assert r.total_time == pytest.approx(25 + 1 + 2)
        assert r.failures_by_severity == (1, 0)

    def test_severity2_ignores_level1_checkpoint(self):
        # Same failure moment but severity 2: L1@5 is destroyed, no L2
        # checkpoint exists yet -> scratch restart (cost R2=3), lose 7.
        # Under the physical "paid" policy the L1@5 checkpoint is re-taken
        # on recompute (+1 minute).
        r = run(spec2(), PLAN2, [(8.0, 2)], recheckpoint="paid")
        assert r.completed
        assert r.scratch_restarts == 1
        assert r.times.restart == pytest.approx(3.0)
        assert r.times.rework_compute == pytest.approx(7.0)
        assert r.times.checkpoint == pytest.approx(6.0)  # 1+1 (L1 twice) +3 +1
        assert r.total_time == pytest.approx(25 + 3 + 7 + 1)

    def test_severity2_scratch_free_recheckpoint(self):
        # Default policy: the recomputation re-establishes L1@5 for free.
        r = run(spec2(), PLAN2, [(8.0, 2)])
        assert r.completed
        assert r.checkpoints_restored == 1
        assert r.times.checkpoint == pytest.approx(5.0)
        assert r.total_time == pytest.approx(25 + 3 + 7)

    def test_severity2_uses_level2_checkpoint(self):
        # Failure at t=16 (third segment: work 10..15 runs t=14..19, so
        # work at failure = 12).  L2@10 recovers it; L1@5 older anyway.
        r = run(spec2(), PLAN2, [(16.0, 2)])
        assert r.times.restart == pytest.approx(3.0)
        assert r.times.rework_compute == pytest.approx(2.0)
        assert r.total_time == pytest.approx(25 + 3 + 2)

    def test_severity1_uses_newest_checkpoint_of_any_level(self):
        # Failure in third segment, severity 1: newest valid ckpt is L2@10
        # (which also validated L1@10); restart cost is the *level-1* cost
        # because the hierarchical L2 write refreshed level 1 too.
        r = run(spec2(), PLAN2, [(16.0, 1)])
        assert r.times.restart == pytest.approx(1.0)
        assert r.times.rework_compute == pytest.approx(2.0)

    def test_failure_before_first_checkpoint_restarts_from_scratch(self):
        r = run(spec2(), PLAN2, [(2.0, 1)])
        assert r.scratch_restarts == 1
        assert r.times.rework_compute == pytest.approx(2.0)
        # scratch restart for severity 1 charges the level-1 restart time
        assert r.times.restart == pytest.approx(1.0)
        assert r.total_time == pytest.approx(25 + 1 + 2)


class TestFailuresDuringCheckpoints:
    def test_failed_checkpoint_retaken_after_recompute(self):
        # First L1 ckpt runs t=5..6; failure at 5.5 (sev 1), no ckpt yet ->
        # scratch; lose all 5 work units; retry everything.
        r = run(spec2(), PLAN2, [(5.5, 1)])
        assert r.completed
        assert r.checkpoints_failed == 1
        assert r.checkpoints_completed == 3
        assert r.times.failed_checkpoint == pytest.approx(0.5)
        assert r.times.rework_checkpoint == pytest.approx(5.0)
        # timeline: 5 + 0.5(failed ckpt) + 1(restart) + 5(recompute) + 20(ckpts+rest)
        assert r.total_time == pytest.approx(5 + 0.5 + 1.0 + 5 + 20)

    def test_failure_during_level2_checkpoint_recovers_from_level1(self):
        # L2 ckpt runs t=11..14; failure at 12 (sev 1) -> restart from L1@5,
        # recompute 5, then retake the L2 checkpoint at position 10.
        r = run(spec2(), PLAN2, [(12.0, 1)])
        assert r.checkpoints_failed == 1
        assert r.times.failed_checkpoint == pytest.approx(1.0)
        assert r.times.rework_checkpoint == pytest.approx(5.0)
        assert r.checkpoints_completed == 3  # L1@5, L2@10 (retaken), L1@15
        assert r.total_time == pytest.approx(25 + 1.0 + 1.0 + 5.0)


class TestFailuresDuringRestarts:
    def test_retry_same_level(self):
        # Sev-1 failure at t=8 -> restart (t=8..9). A second sev-1 failure
        # at 8.5 interrupts the restart; retry from the same checkpoint.
        r = run(spec2(), PLAN2, [(8.0, 1), (8.5, 1)])
        assert r.restarts_failed == 1
        assert r.restarts_completed == 1
        assert r.times.failed_restart == pytest.approx(0.5)
        assert r.times.restart == pytest.approx(1.0)
        # no additional work lost by the restart failure
        assert r.times.rework_restart == pytest.approx(0.0)
        assert r.total_time == pytest.approx(25 + 2.0 + 0.5 + 1.0)

    def test_higher_severity_during_restart_escalates_target(self):
        # Sev-1 failure at t=16 (work 12): restart from L2@10's refreshed
        # L1 checkpoint.  During restart a sev-2 failure destroys level-1
        # data; recovery re-targets L2@10 (still valid).  Extra loss: 0.
        r = run(spec2(), PLAN2, [(16.0, 1), (16.5, 2)])
        assert r.restarts_failed == 1
        # final successful restart is the level-2 one (cost 3)
        assert r.times.restart == pytest.approx(3.0)
        assert r.times.rework_restart == pytest.approx(0.0)
        assert r.completed

    def test_escalation_during_restart_loses_more_work(self):
        # Failure sev 1 at t=21.2 (final segment runs t=20..25, so work =
        # 15 + 1.2 = 16.2): restart from L1@15; sev-2 failure during the
        # restart -> only L2@10 survives; the 5 work units between 10 and
        # 15 are attributed to the failed restart.
        r = run(spec2(), PLAN2, [(21.2, 1), (21.5, 2)])
        assert r.times.rework_compute == pytest.approx(1.2)
        assert r.times.rework_restart == pytest.approx(5.0)
        assert r.times.restart == pytest.approx(3.0)

    def test_moody_escalation_semantics(self):
        # Same-severity failure during restart escalates the *severity*
        # under "escalate" semantics: sev 1 twice -> treated as sev 2.
        r = run(
            spec2(),
            PLAN2,
            [(16.0, 1), (16.5, 1)],
            restart_semantics="escalate",
        )
        # escalated to severity 2 -> restart from L2@10 at cost 3
        assert r.times.restart == pytest.approx(3.0)

    def test_retry_semantics_do_not_escalate(self):
        r = run(spec2(), PLAN2, [(16.0, 1), (16.5, 1)])
        assert r.times.restart == pytest.approx(1.0)

    def test_escalate_at_top_severity_retries(self):
        r = run(
            spec2(),
            PLAN2,
            [(16.0, 2), (16.5, 2)],
            restart_semantics="escalate",
        )
        assert r.completed
        assert r.times.restart == pytest.approx(3.0)  # still the L2 restart


class TestSkipTopLevelPlans:
    def test_unprotected_severity_restarts_from_scratch(self):
        plan = CheckpointPlan.single_level(1, 5.0)  # never checkpoints L2
        # Sev-2 failure at t=13 (work = 13 - 2 ckpt minutes = 11): no
        # level >= 2 checkpoint can exist; scratch restart at R2 = 3.
        r = run(spec2(), plan, [(13.0, 2)])
        assert r.scratch_restarts == 1
        assert r.times.restart == pytest.approx(3.0)
        assert r.times.rework_compute == pytest.approx(11.0)
        assert r.completed

    def test_protected_severity_still_recovers(self):
        plan = CheckpointPlan.single_level(1, 5.0)
        r = run(spec2(), plan, [(13.0, 1)])
        assert r.scratch_restarts == 0
        assert r.times.rework_compute == pytest.approx(1.0)


class TestRecheckpointPolicies:
    # Scenario: complete L1@5, L2@10, L1@15, then a severity-2 failure in
    # the last segment rolls back to L2@10 and the app recomputes past
    # position 3 (work 15) again.
    TRACE = [(21.0, 2)]

    def test_free_restores_validity_without_cost(self):
        r = run(spec2(), PLAN2, self.TRACE, recheckpoint="free")
        assert r.checkpoints_restored == 1
        assert r.checkpoints_completed == 3
        assert r.times.checkpoint == pytest.approx(5.0)
        # rolled back 21-20+15-10 work minutes? work at failure = 16, lost 6
        assert r.times.rework_compute == pytest.approx(6.0)
        assert r.total_time == pytest.approx(25 + 3 + 6)

    def test_paid_retakes_the_checkpoint(self):
        r = run(spec2(), PLAN2, self.TRACE, recheckpoint="paid")
        assert r.checkpoints_restored == 0
        assert r.checkpoints_completed == 4  # L1@15 taken twice
        assert r.times.checkpoint == pytest.approx(6.0)
        assert r.total_time == pytest.approx(25 + 3 + 6 + 1)

    def test_skip_neither_pays_nor_restores(self):
        # Add a later severity-1 failure after the recomputation has
        # passed position 15 (t=30): under "skip" that position was not
        # re-established, so recovery falls back to L2@10 again.
        trace = [(21.0, 2), (30.0, 1)]
        r_skip = run(spec2(), PLAN2, trace, recheckpoint="skip")
        r_free = run(spec2(), PLAN2, trace, recheckpoint="free")
        assert r_skip.checkpoints_restored == 0
        # skip loses more work on the second failure than free
        assert r_skip.times.rework_compute > r_free.times.rework_compute
        assert r_skip.total_time > r_free.total_time

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="recheckpoint"):
            run(spec2(), PLAN2, [], recheckpoint="bogus")


class TestInvariants:
    def test_category_times_sum_to_total(self):
        traces = [
            [],
            [(8.0, 1)],
            [(5.5, 1), (12.0, 2), (20.0, 1)],
            [(1.0, 2), (2.0, 1), (3.0, 2), (10.0, 1)],
        ]
        for trace in traces:
            r = run(spec2(), PLAN2, trace)
            assert r.times.total() == pytest.approx(r.total_time, rel=1e-12)

    def test_work_plus_rework_equals_compute_time(self):
        trace = [(5.5, 1), (12.0, 2), (16.0, 1), (16.5, 2), (30.0, 1)]
        r = run(spec2(), PLAN2, trace)
        rework = (
            r.times.rework_compute + r.times.rework_checkpoint + r.times.rework_restart
        )
        compute_time = r.total_time - (
            r.times.checkpoint
            + r.times.failed_checkpoint
            + r.times.restart
            + r.times.failed_restart
        )
        assert compute_time == pytest.approx(r.work_done + rework, rel=1e-9)

    def test_horizon_cap(self):
        # Failures every 0.5 min with 1-min restarts: no progress possible.
        trace = [(0.5 * k, 2) for k in range(1, 2000)]
        r = run(spec2(), PLAN2, trace, max_time=100.0)
        assert not r.completed
        assert r.total_time >= 100.0
        assert r.efficiency < 0.2

    def test_failure_exactly_at_op_end(self):
        # Failure lands exactly when the first compute segment completes;
        # the segment counts, the following checkpoint is interrupted at
        # zero elapsed time.
        r = run(spec2(), PLAN2, [(5.0, 1)])
        assert r.completed
        assert r.checkpoints_failed == 1
        assert r.times.failed_checkpoint == pytest.approx(0.0)
        assert r.times.rework_checkpoint == pytest.approx(5.0)

    def test_plan_level_validation(self):
        plan = CheckpointPlan((1, 5), 5.0, (1,))
        with pytest.raises(ValueError, match="levels"):
            run(spec2(), plan, [])

    def test_restart_semantics_validation(self):
        with pytest.raises(ValueError, match="restart_semantics"):
            run(spec2(), PLAN2, [], restart_semantics="bogus")

    def test_efficiency_bounded(self):
        r = run(spec2(), PLAN2, [(3.0, 1), (7.0, 2), (11.0, 1)])
        assert 0.0 < r.efficiency <= 1.0
