"""Tests for the scenario scheduler: determinism, caching, no nested pools."""

from __future__ import annotations

import pytest

from repro.exec import (
    OptimizationCache,
    ScenarioTask,
    run_scenarios,
    set_active_cache,
)
from repro.exec import scheduler as scheduler_mod
from repro.experiments import figure2


@pytest.fixture(autouse=True)
def _no_active_cache():
    previous = set_active_cache(None)
    yield
    set_active_cache(previous)


def _identity(value):
    return value


def _boom(value):
    raise ValueError(f"bad value {value}")


class TestRunScenarios:
    def test_empty(self):
        assert run_scenarios([], workers=4) == []

    def test_order_stable_inline_and_parallel(self):
        tasks = [ScenarioTask(_identity, args=(i,)) for i in range(7)]
        assert run_scenarios(tasks, workers=1) == list(range(7))
        assert run_scenarios(tasks, workers=3) == list(range(7))

    def test_single_task_stays_inline(self, monkeypatch):
        def no_pool(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("ProcessPoolExecutor must not be used")

        monkeypatch.setattr(scheduler_mod, "ProcessPoolExecutor", no_pool)
        tasks = [ScenarioTask(_identity, args=(5,))]
        assert run_scenarios(tasks, workers=8) == [5]

    def test_inside_worker_stays_inline(self, monkeypatch):
        def no_pool(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("nested pool")

        monkeypatch.setattr(scheduler_mod, "ProcessPoolExecutor", no_pool)
        monkeypatch.setattr(scheduler_mod, "_IN_SCENARIO_WORKER", True)
        tasks = [ScenarioTask(_identity, args=(i,)) for i in range(3)]
        assert run_scenarios(tasks, workers=8) == [0, 1, 2]

    def test_failure_carries_label(self):
        tasks = [
            ScenarioTask(_identity, args=(1,), label="ok"),
            ScenarioTask(_boom, args=(2,), label="D5/dauwe"),
        ]
        with pytest.raises(RuntimeError, match="D5/dauwe"):
            run_scenarios(tasks, workers=2)


class TestFigureRowsIdentical:
    """ISSUE acceptance: parallel and cached rows == serial uncached rows."""

    _KW = dict(trials=2, seed=0, systems=("D1",), techniques=("dauwe", "daly"))

    def test_parallel_matches_serial(self):
        serial = figure2.run(workers=1, **self._KW)
        parallel = figure2.run(workers=4, **self._KW)
        assert parallel.rows == serial.rows

    def test_cached_matches_uncached(self, tmp_path):
        baseline = figure2.run(workers=1, **self._KW)

        cache = OptimizationCache(tmp_path)
        set_active_cache(cache)
        cold = figure2.run(workers=1, **self._KW)
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        before = cache.stats.snapshot()
        warm = figure2.run(workers=1, **self._KW)
        delta = cache.stats.delta(before)
        assert delta.misses == 0 and delta.hits == 2

        assert cold.rows == baseline.rows
        assert warm.rows == baseline.rows

    def test_parallel_workers_share_disk_cache(self, tmp_path):
        cache = OptimizationCache(tmp_path)
        set_active_cache(cache)
        first = figure2.run(workers=4, **self._KW)
        # Worker deltas are folded back into the parent's counters, and
        # their stores landed in the shared directory.
        assert cache.stats.misses == 2
        assert len(list(tmp_path.glob("*.json"))) == 2

        before = cache.stats.snapshot()
        second = figure2.run(workers=4, **self._KW)
        delta = cache.stats.delta(before)
        assert delta.misses == 0 and delta.hits == 2
        assert second.rows == first.rows


class TestDroppedWorkerWarnings:
    """Silently-dropped parallelism requests must warn once per process."""

    def test_resolve_sim_workers_warns_once(self, capsys, monkeypatch):
        from repro.exec import resolve_sim_workers

        monkeypatch.setattr(scheduler_mod, "_WARNED_SIM_WORKERS", False)
        assert resolve_sim_workers(4, 3) == 1
        err = capsys.readouterr().err
        assert "--sim-workers 3" in err and "ignored" in err
        assert resolve_sim_workers(4, 3) == 1
        assert capsys.readouterr().err == ""

    def test_resolve_sim_workers_silent_when_honored(self, capsys, monkeypatch):
        from repro.exec import resolve_sim_workers

        monkeypatch.setattr(scheduler_mod, "_WARNED_SIM_WORKERS", False)
        assert resolve_sim_workers(1, 3) == 3
        assert resolve_sim_workers(4, 1) == 1
        assert capsys.readouterr().err == ""

    def test_tiny_run_drops_workers_with_warning(self, capsys):
        from repro.simulator import run as sim_run
        from repro.simulator import simulate_many
        from repro.systems import TEST_SYSTEMS
        from repro.experiments.runner import optimize_technique

        opt = optimize_technique(TEST_SYSTEMS["M"], "daly")
        sim_run._reset_warnings()
        inline = simulate_many(TEST_SYSTEMS["M"], opt.plan, trials=2, seed=0)
        pooled = simulate_many(
            TEST_SYSTEMS["M"], opt.plan, trials=2, seed=0, workers=4
        )
        err = capsys.readouterr().err
        assert "workers=4 ignored for trials=2" in err
        assert "pool startup would dominate" in err
        assert err.count("warning:") == 1
        # One-shot per process until re-armed.
        simulate_many(TEST_SYSTEMS["M"], opt.plan, trials=2, seed=0, workers=4)
        assert capsys.readouterr().err == ""
        sim_run._reset_warnings()
        simulate_many(TEST_SYSTEMS["M"], opt.plan, trials=2, seed=0, workers=4)
        assert "warning:" in capsys.readouterr().err
        assert pooled.mean_efficiency == inline.mean_efficiency
