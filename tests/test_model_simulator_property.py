"""End-to-end property: model predictions track the simulator.

Hypothesis generates random (mild) two-level systems; for each, the
paper's model optimizes a plan and its predicted efficiency must land
within a loose band of the simulated mean.  This is the package's
strongest single invariant — it exercises severity folding, the Eqn-4
recursion, the optimizer and the simulator together on inputs nobody
hand-picked.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DauweModel
from repro.simulator import simulate_many
from repro.systems import SystemSpec


@st.composite
def mild_systems(draw):
    """Two-level systems where the optimum efficiency is comfortably > 0.3."""
    mtbf = draw(st.floats(min_value=30.0, max_value=2000.0))
    p1 = draw(st.floats(min_value=0.5, max_value=0.95))
    d1 = draw(st.floats(min_value=0.05, max_value=0.5))
    d2 = d1 + draw(st.floats(min_value=0.1, max_value=2.0))
    t_b = draw(st.sampled_from([240.0, 480.0, 960.0]))
    return SystemSpec(
        name="hyp",
        mtbf=mtbf,
        level_probabilities=(p1, 1.0 - p1),
        checkpoint_times=(d1, d2),
        baseline_time=t_b,
    )


class TestModelTracksSimulator:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(spec=mild_systems())
    def test_prediction_within_band(self, spec):
        model = DauweModel(spec)
        res = model.optimize()
        stats = simulate_many(spec, res.plan, trials=30, seed=99)
        assert res.predicted_efficiency == pytest.approx(
            stats.mean_efficiency, abs=max(0.04, 3.0 * stats.std_efficiency)
        )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(spec=mild_systems())
    def test_optimum_beats_naive_plans(self, spec):
        """The sweep's pick predicts no worse than simple heuristics."""
        from repro.core import CheckpointPlan

        model = DauweModel(spec)
        best = model.optimize().predicted_time
        for tau, count in ((spec.baseline_time / 4, 1), (5.0, 4)):
            naive = CheckpointPlan((1, 2), tau, (count,))
            assert model.predict_time(naive) >= best - 1e-6
