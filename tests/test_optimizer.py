"""Tests for the bounded sweep + refinement machinery (Section III-C)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    CheckpointModel,
    CheckpointPlan,
    DauweModel,
    enumerate_count_vectors,
    golden_section,
    sweep_plans,
)
from repro.systems import SystemSpec


class TestGoldenSection:
    def test_quadratic(self):
        x, fx = golden_section(lambda t: (t - 3.0) ** 2 + 1.0, 0.1, 10.0)
        assert x == pytest.approx(3.0, abs=1e-6)
        assert fx == pytest.approx(1.0, abs=1e-9)

    def test_boundary_minimum(self):
        x, _ = golden_section(lambda t: t, 1.0, 5.0)
        assert x == pytest.approx(1.0, abs=1e-3)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            golden_section(lambda t: t, 5.0, 1.0)

    def test_checkpointing_shape(self):
        # delta/t + t/2M: analytic optimum sqrt(2 delta M).
        delta, M = 2.0, 100.0
        x, _ = golden_section(lambda t: delta / t + t / (2 * M), 0.01, 1000.0)
        assert x == pytest.approx(math.sqrt(2 * delta * M), rel=1e-4)


class TestEnumerateCounts:
    def test_zero_counts(self):
        assert list(enumerate_count_vectors(0, 100.0)) == [()]

    def test_product_bound_respected(self):
        for counts in enumerate_count_vectors(2, 30.0):
            assert math.prod(n + 1 for n in counts) <= 30.0

    def test_explicit_candidates(self):
        vecs = list(enumerate_count_vectors(2, 1e9, candidates=(1, 2)))
        assert set(vecs) == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_tight_bound_empty(self):
        assert list(enumerate_count_vectors(1, 1.5)) == []

    def test_depth_three_nonempty(self):
        vecs = list(enumerate_count_vectors(3, 1e6))
        assert (1, 1, 1) in vecs
        assert len(vecs) > 100


class _QuadraticModel(CheckpointModel):
    """Synthetic model with a known unique optimum for sweep testing."""

    name = "quadratic"

    def __init__(self, system, best_tau=7.0, best_counts=(3,)):
        super().__init__(system)
        self.best_tau = best_tau
        self.best_counts = best_counts
        self.calls = 0

    def candidate_level_subsets(self):
        return [(1, 2)]

    def predict_time(self, plan):
        self.calls += 1
        penalty = sum(
            (a - b) ** 2 for a, b in zip(plan.counts, self.best_counts)
        )
        return (
            self.system.baseline_time
            + (math.log(plan.tau0 / self.best_tau)) ** 2 * 10.0
            + penalty * 5.0
            + 1.0
        )


class TestSweep:
    def test_finds_known_optimum(self, tiny2):
        model = _QuadraticModel(tiny2)
        res = sweep_plans(model)
        assert res.plan.tau0 == pytest.approx(7.0, rel=1e-3)
        assert res.plan.counts == (3,)
        assert res.predicted_time == pytest.approx(tiny2.baseline_time + 1.0, rel=1e-6)
        assert res.evaluations > 0

    def test_pattern_bound_enforced(self, tiny2):
        res = sweep_plans(_QuadraticModel(tiny2))
        assert res.plan.pattern_work <= tiny2.baseline_time + 1e-6

    def test_respects_explicit_bounds(self, tiny2):
        model = _QuadraticModel(tiny2)
        res = sweep_plans(model, tau0_min=10.0, tau0_max=50.0)
        assert res.plan.tau0 >= 10.0 - 1e-9

    def test_invalid_bounds(self, tiny2):
        with pytest.raises(ValueError, match="bounds"):
            sweep_plans(_QuadraticModel(tiny2), tau0_min=5.0, tau0_max=2.0)

    def test_all_infeasible_raises(self, tiny2):
        class Hopeless(_QuadraticModel):
            def predict_time(self, plan):
                return math.inf

        with pytest.raises(RuntimeError, match="no feasible plan"):
            sweep_plans(Hopeless(tiny2))

    def test_refinement_improves_or_matches_coarse(self, tiny3):
        model = DauweModel(tiny3)
        coarse = sweep_plans(model, refine=False)
        fine = sweep_plans(model, refine=True)
        assert fine.predicted_time <= coarse.predicted_time + 1e-9

    def test_batch_and_scalar_paths_agree(self, tiny2):
        # _QuadraticModel has no predict_time_batch -> scalar fallback; the
        # Dauwe model is vectorized.  Both must satisfy their own optimum.
        model = DauweModel(tiny2)
        res = model.optimize()
        t_best = res.predicted_time
        for tau in (res.plan.tau0 * 0.5, res.plan.tau0 * 2.0):
            other = CheckpointPlan(res.plan.levels, tau, res.plan.counts)
            assert model.predict_time(other) >= t_best - 1e-9

    def test_optimization_result_validation(self, tiny2):
        res = DauweModel(tiny2).optimize()
        assert 0 < res.predicted_efficiency <= 1.0
        assert res.plan.tau0 > 0

    def test_bad_batch_shape_detected(self, tiny2):
        class BadBatch(_QuadraticModel):
            def predict_time_batch(self, levels, counts, tau0):
                return np.ones(3)

        with pytest.raises(ValueError, match="shape"):
            sweep_plans(BadBatch(tiny2), tau0_points=5)


class TestGoldenSectionTolerance:
    def test_full_output_reports_true_evaluations(self):
        calls = [0]

        def fn(t):
            calls[0] += 1
            return (t - 3.0) ** 2

        x, fx, evals = golden_section(fn, 0.1, 10.0, full_output=True)
        assert evals == calls[0]
        assert x == pytest.approx(3.0, abs=1e-6)

    def test_tolerance_terminates_early(self):
        def counting(counter):
            def fn(t):
                counter[0] += 1
                return (t - 3.0) ** 2
            return fn

        full_calls, tol_calls = [0], [0]
        x_full, _, n_full = golden_section(
            counting(full_calls), 0.1, 10.0, full_output=True
        )
        x_tol, _, n_tol = golden_section(
            counting(tol_calls), 0.1, 10.0, tol=1e-4, full_output=True
        )
        assert n_full == full_calls[0] and n_tol == tol_calls[0]
        assert n_tol < n_full
        assert x_tol == pytest.approx(x_full, abs=1e-2)

    def test_tol_zero_matches_legacy_output(self):
        fn = lambda t: (t - 3.0) ** 2
        assert golden_section(fn, 0.1, 10.0) == golden_section(
            fn, 0.1, 10.0, tol=0.0
        )


class TestGoldenSectionDegenerateContracts:
    """The defined behaviour on hostile objectives (numerics-guard pins)."""

    def test_all_infinite_objective_returns_inf_minimum(self):
        # Every comparison sees inf <= inf, the bracket walks toward lo,
        # and the caller gets an interior x with an *infinite* minimum —
        # the signal that no feasible interval exists.  Never NaN, never
        # an exception.
        x, fx, evals = golden_section(
            lambda t: math.inf, 1.0, 9.0, full_output=True
        )
        assert fx == math.inf
        assert not math.isnan(x)
        assert 1.0 <= x <= 9.0
        assert evals > 0

    def test_all_infinite_objective_with_tolerance(self):
        x, fx = golden_section(lambda t: math.inf, 1.0, 9.0, tol=1e-3)
        assert fx == math.inf
        assert 1.0 <= x <= 9.0

    def test_flat_objective_returns_a_probe(self):
        x, fx, evals = golden_section(
            lambda t: 7.0, 0.5, 4.5, full_output=True
        )
        assert fx == 7.0
        assert 0.5 <= x <= 4.5
        assert evals > 0

    def test_already_converged_bracket_exits_after_two_probes(self):
        # hi - lo below the tol-derived width floor at entry: the loop
        # must exit immediately after evaluating the two interior probes.
        calls = [0]

        def fn(t):
            calls[0] += 1
            return (t - 3.0) ** 2

        x, fx, evals = golden_section(
            fn, 3.0, 3.0 + 1e-9, tol=1e-3, full_output=True
        )
        assert evals == 2
        assert calls[0] == 2
        assert x == pytest.approx(3.0, abs=1e-6)


class TestGridSweep:
    """The batched (V, T) grid path must be bitwise-equal to per-vector."""

    def _models(self, spec):
        from repro.models import BenoitModel, MoodyModel

        return [DauweModel(spec), MoodyModel(spec), BenoitModel(spec)]

    def test_grid_matches_per_vector_sweep(self, tiny3):
        for model in self._models(tiny3):
            grid = sweep_plans(model)
            flat = sweep_plans(model, grid_eval=False)
            assert grid.plan == flat.plan, model.name
            assert grid.predicted_time == flat.predicted_time, model.name
            assert grid.evaluations == flat.evaluations, model.name

    def test_grid_matches_per_vector_sweep_2level(self, tiny2):
        for model in self._models(tiny2):
            grid = sweep_plans(model)
            flat = sweep_plans(model, grid_eval=False)
            assert grid.plan == flat.plan, model.name
            assert grid.predicted_time == flat.predicted_time, model.name

    def test_grid_rows_match_1d_batch(self, tiny3):
        model = DauweModel(tiny3)
        levels = (1, 2, 3)
        vecs = np.array([[1, 1], [2, 1], [3, 2]], dtype=float)
        tau0 = np.linspace(1.0, 9.0, 7)
        grid = model.predict_time_batch(levels, vecs, tau0)
        assert grid.shape == (3, 7)
        for i in range(vecs.shape[0]):
            row = model.predict_time_batch(levels, tuple(vecs[i]), tau0)
            np.testing.assert_array_equal(grid[i], row)

    def test_unvectorized_model_falls_back(self, tiny2):
        model = _QuadraticModel(tiny2)
        assert not getattr(model, "supports_grid_eval")
        res = sweep_plans(model)  # grid_eval=True must not break it
        assert res.plan.counts == (3,)
