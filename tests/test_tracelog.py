"""Tests for event-timeline recording and its consistency invariants."""

from __future__ import annotations

import pytest

from repro.core import CheckpointPlan, DauweModel
from repro.failures import TraceFailureSource
from repro.simulator import (
    SimEvent,
    render_timeline,
    simulate_trial,
    validate_timeline,
)
from repro.simulator.tracelog import kind_totals
from repro.systems import SystemSpec, get_system


def spec2():
    return SystemSpec(
        name="t2",
        mtbf=1000.0,
        level_probabilities=(0.5, 0.5),
        checkpoint_times=(1.0, 3.0),
        baseline_time=20.0,
    )


PLAN2 = CheckpointPlan((1, 2), tau0=5.0, counts=(1,))


def run(trace, **kw):
    src = TraceFailureSource([t for t, _ in trace], [s for _, s in trace])
    return simulate_trial(spec2(), PLAN2, source=src, record_events=True, **kw)


class TestSimEvent:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            SimEvent(0.0, 1.0, "nap")
        with pytest.raises(ValueError, match="before"):
            SimEvent(2.0, 1.0, "compute")

    def test_duration_and_describe(self):
        ev = SimEvent(1.0, 3.5, "checkpoint", level=2)
        assert ev.duration == pytest.approx(2.5)
        assert "L2 checkpoint" in ev.describe()

    def test_describe_failure_marker(self):
        ev = SimEvent(0.0, 1.0, "failed_restart", level=1, severity=2)
        assert "failure sev 2" in ev.describe()


class TestRecording:
    def test_failure_free_timeline(self):
        r = run([])
        # compute/ckpt alternation: c5 d1 c5 d2 c5 d1 c5
        kinds = [ev.kind for ev in r.events]
        assert kinds == [
            "compute", "checkpoint", "compute", "checkpoint",
            "compute", "checkpoint", "compute",
        ]
        levels = [ev.level for ev in r.events if ev.kind == "checkpoint"]
        assert levels == [1, 2, 1]
        validate_timeline(r.events, r.total_time)

    def test_failure_markers(self):
        r = run([(8.0, 1)])
        interrupted = [ev for ev in r.events if ev.severity]
        assert len(interrupted) == 1
        assert interrupted[0].kind == "compute"
        assert interrupted[0].end == pytest.approx(8.0)
        restart = [ev for ev in r.events if ev.kind == "restart"]
        assert len(restart) == 1
        assert restart[0].level == 1

    def test_default_is_off(self):
        src = TraceFailureSource([], [])
        r = simulate_trial(spec2(), PLAN2, source=src)
        assert r.events is None

    def test_kind_totals_match_accounting(self):
        r = run([(5.5, 1), (12.0, 2), (16.0, 1), (16.5, 2), (30.0, 1)])
        totals = kind_totals(r.events)
        assert totals["checkpoint"] == pytest.approx(r.times.checkpoint)
        assert totals["failed_checkpoint"] == pytest.approx(r.times.failed_checkpoint)
        assert totals["restart"] == pytest.approx(r.times.restart)
        assert totals["failed_restart"] == pytest.approx(r.times.failed_restart)
        compute = totals["compute"]
        assert compute == pytest.approx(
            r.times.work
            + r.times.rework_compute
            + r.times.rework_checkpoint
            + r.times.rework_restart
        )

    def test_timeline_tiles_random_trial(self):
        spec = get_system("D4")
        plan = DauweModel(spec).optimize().plan
        r = simulate_trial(spec, plan, rng=3, record_events=True)
        validate_timeline(r.events, r.total_time)
        totals = kind_totals(r.events)
        assert sum(totals.values()) == pytest.approx(r.total_time)

    def test_render_timeline_limit(self):
        r = run([(8.0, 1)])
        text = render_timeline(r.events, limit=3)
        assert "more events" in text
        assert len(text.splitlines()) == 4

    def test_validate_detects_gap(self):
        events = [SimEvent(0.0, 1.0, "compute"), SimEvent(2.0, 3.0, "compute")]
        with pytest.raises(ValueError, match="gap or overlap"):
            validate_timeline(events, 3.0)

    def test_validate_detects_bad_total(self):
        events = [SimEvent(0.0, 1.0, "compute")]
        with pytest.raises(ValueError, match="total_time"):
            validate_timeline(events, 2.0)
