"""Unit tests for the accounting records (TimeBreakdown & friends)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator import SimulationStats, TimeBreakdown, TrialResult


class TestTimeBreakdown:
    def test_total_sums_all_fields(self):
        bd = TimeBreakdown(
            work=10.0,
            checkpoint=2.0,
            failed_checkpoint=0.5,
            restart=1.0,
            failed_restart=0.25,
            rework_compute=3.0,
            rework_checkpoint=0.75,
            rework_restart=0.5,
        )
        assert bd.total() == pytest.approx(18.0)

    def test_fractions_sum_to_one(self):
        bd = TimeBreakdown(work=30.0, checkpoint=10.0)
        fr = bd.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert fr["work"] == pytest.approx(0.75)

    def test_fractions_of_empty(self):
        assert all(v == 0.0 for v in TimeBreakdown().fractions().values())

    def test_addition(self):
        a = TimeBreakdown(work=1.0, restart=2.0)
        b = TimeBreakdown(work=3.0, checkpoint=4.0)
        c = a + b
        assert c.work == 4.0 and c.restart == 2.0 and c.checkpoint == 4.0
        # inputs untouched
        assert a.work == 1.0

    def test_scaled(self):
        bd = TimeBreakdown(work=10.0, checkpoint=4.0).scaled(0.5)
        assert bd.work == 5.0 and bd.checkpoint == 2.0

    def test_as_dict_order(self):
        keys = list(TimeBreakdown().as_dict())
        assert keys[0] == "work"
        assert keys[-1] == "rework_restart"


class TestTrialResult:
    def make(self, total=100.0, work=80.0, completed=True):
        return TrialResult(
            total_time=total,
            work_done=work,
            completed=completed,
            times=TimeBreakdown(work=work),
            failures_by_severity=(3, 1),
        )

    def test_efficiency(self):
        assert self.make().efficiency == pytest.approx(0.8)

    def test_efficiency_zero_time(self):
        r = self.make(total=0.0, work=0.0)
        assert r.efficiency == 0.0

    def test_total_failures(self):
        assert self.make().total_failures == 4

    def test_events_default_none(self):
        assert self.make().events is None


class TestSimulationStats:
    def make_stats(self, effs):
        trials = [
            TrialResult(
                total_time=100.0 / e,
                work_done=100.0,
                completed=True,
                times=TimeBreakdown(work=100.0),
                failures_by_severity=(1,),
            )
            for e in effs
        ]
        return SimulationStats.from_trials(trials)

    def test_mean_and_std(self):
        stats = self.make_stats([0.5, 0.7])
        assert stats.mean_efficiency == pytest.approx(0.6)
        assert stats.std_efficiency == pytest.approx(0.1)

    def test_breakdown_averaged(self):
        stats = self.make_stats([0.5, 0.5])
        assert stats.mean_breakdown.work == pytest.approx(100.0)

    def test_completed_fraction(self):
        trials = [
            TrialResult(10.0, 10.0, True, TimeBreakdown(work=10.0), (0,)),
            TrialResult(10.0, 5.0, False, TimeBreakdown(work=5.0), (0,)),
        ]
        assert SimulationStats.from_trials(trials).completed_fraction == 0.5

    def test_ci_narrows_with_trials(self):
        rng = np.random.default_rng(0)
        few = self.make_stats(list(0.5 + 0.05 * rng.standard_normal(10)))
        many = self.make_stats(list(0.5 + 0.05 * rng.standard_normal(1000)))
        def width(s):
            lo, hi = s.confidence_interval()
            return hi - lo
        assert width(many) < width(few)

    def test_single_trial_ci_degenerate(self):
        stats = self.make_stats([0.6])
        lo, hi = stats.confidence_interval()
        assert lo == hi == pytest.approx(0.6)


# ----------------------------------------------------------------------
# Property tests: the TimeBreakdown algebra availability reporting
# leans on.  ``__add__`` and ``scaled`` must preserve ``total()`` (up
# to float re-association) and ``fractions()`` must be a probability
# vector whenever the breakdown is non-degenerate.
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_CATEGORIES = list(TimeBreakdown().as_dict())

_minutes = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)

_breakdowns = st.builds(
    TimeBreakdown, **{name: _minutes for name in _CATEGORIES}
)


class TestTimeBreakdownProperties:
    @given(a=_breakdowns, b=_breakdowns)
    def test_addition_preserves_total(self, a, b):
        combined = a + b
        assert combined.total() == pytest.approx(
            a.total() + b.total(), rel=1e-12, abs=1e-9
        )
        # and is per-field exact, which is the stronger statement
        for name in _CATEGORIES:
            assert combined.as_dict()[name] == (
                a.as_dict()[name] + b.as_dict()[name]
            )

    @given(bd=_breakdowns, k=st.floats(min_value=0.0, max_value=1e6,
                                       allow_nan=False, allow_infinity=False))
    def test_scaling_preserves_total(self, bd, k):
        assert bd.scaled(k).total() == pytest.approx(
            k * bd.total(), rel=1e-12, abs=1e-9
        )

    @given(bd=_breakdowns)
    def test_fractions_sum_to_one_when_nondegenerate(self, bd):
        fr = bd.fractions()
        assert set(fr) == set(_CATEGORIES)
        if bd.total() > 0:
            assert sum(fr.values()) == pytest.approx(1.0)
            assert all(0.0 <= v <= 1.0 + 1e-12 for v in fr.values())
        else:
            assert all(v == 0.0 for v in fr.values())
