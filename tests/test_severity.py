"""Tests for LevelMapping: folding severities onto used level subsets."""

from __future__ import annotations

import pytest

from repro.core import LevelMapping
from repro.systems import SystemSpec


@pytest.fixture
def sys4():
    return SystemSpec(
        name="s4",
        mtbf=100.0,
        level_probabilities=(0.4, 0.3, 0.2, 0.1),
        checkpoint_times=(1.0, 2.0, 3.0, 10.0),
        baseline_time=500.0,
    )


class TestFullMapping:
    def test_identity_on_full_levels(self, sys4):
        mp = LevelMapping.build(sys4, (1, 2, 3, 4))
        assert mp.rates == pytest.approx(sys4.level_rates)
        assert mp.shares == pytest.approx(sys4.severity_probabilities)
        assert mp.unprotected_rate == 0.0
        assert mp.cumulative_rates[-1] == pytest.approx(sys4.failure_rate)

    def test_cumulative_matches_spec(self, sys4):
        mp = LevelMapping.build(sys4, (1, 2, 3, 4))
        for i in range(4):
            assert mp.cumulative_rates[i] == pytest.approx(sys4.cumulative_rate(i + 1))

    def test_costs_copied(self, sys4):
        mp = LevelMapping.build(sys4, (1, 2, 3, 4))
        assert mp.checkpoint_times == sys4.checkpoint_times
        assert mp.restart_times == sys4.checkpoint_times  # default equal


class TestSubsets:
    def test_top_only_absorbs_everything(self, sys4):
        mp = LevelMapping.build(sys4, (4,))
        assert mp.rates[0] == pytest.approx(sys4.failure_rate)
        assert mp.unprotected_rate == 0.0

    def test_top_two(self, sys4):
        mp = LevelMapping.build(sys4, (3, 4))
        lam = sys4.level_rates
        assert mp.rates[0] == pytest.approx(lam[0] + lam[1] + lam[2])
        assert mp.rates[1] == pytest.approx(lam[3])

    def test_prefix_leaves_unprotected_tail(self, sys4):
        mp = LevelMapping.build(sys4, (1, 2, 3))
        lam = sys4.level_rates
        assert mp.unprotected_rate == pytest.approx(lam[3])
        assert mp.unprotected_restart == pytest.approx(10.0)

    def test_unprotected_restart_is_rate_weighted(self, sys4):
        mp = LevelMapping.build(sys4, (1, 2))
        lam = sys4.level_rates
        expected = (lam[2] * 3.0 + lam[3] * 10.0) / (lam[2] + lam[3])
        assert mp.unprotected_restart == pytest.approx(expected)

    def test_middle_subset(self, sys4):
        mp = LevelMapping.build(sys4, (2, 4))
        lam = sys4.level_rates
        assert mp.rates[0] == pytest.approx(lam[0] + lam[1])
        assert mp.rates[1] == pytest.approx(lam[2] + lam[3])

    def test_every_used_level_gets_positive_rate(self, sys4):
        for levels in ((1,), (2,), (1, 3), (2, 3, 4), (1, 2, 3, 4)):
            mp = LevelMapping.build(sys4, levels)
            assert all(r > 0 for r in mp.rates)

    def test_total_rate_conserved(self, sys4):
        for levels in ((1,), (3,), (1, 2), (2, 4), (1, 2, 3)):
            mp = LevelMapping.build(sys4, levels)
            assert mp.protected_rate + mp.unprotected_rate == pytest.approx(
                sys4.failure_rate
            )


class TestValidation:
    def test_empty(self, sys4):
        with pytest.raises(ValueError):
            LevelMapping.build(sys4, ())

    def test_out_of_range(self, sys4):
        with pytest.raises(ValueError, match="out of range"):
            LevelMapping.build(sys4, (1, 5))

    def test_not_ascending(self, sys4):
        with pytest.raises(ValueError, match="ascending"):
            LevelMapping.build(sys4, (2, 2))
