"""Tests for the storage substrate: GF(256), erasure codes, hierarchy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    LevelKind,
    MachineSpec,
    ReedSolomonCode,
    StorageLevel,
    XorPartnerCode,
    build_system_spec,
    cauchy_matrix,
    gf_inv,
    gf_matmul,
    gf_matrix_invert,
    gf_mul,
    gf_mul_bytes,
    vandermonde_matrix,
)

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestGF256:
    def test_mul_identity_and_zero(self):
        for a in range(256):
            assert gf_mul(a, 1) == a
            assert gf_mul(a, 0) == 0

    @given(a=elements, b=elements)
    def test_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(a=elements, b=elements, c=elements)
    def test_mul_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(a=elements, b=elements, c=elements)
    def test_distributive_over_xor(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    @given(a=nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    @given(a=elements)
    def test_vectorized_matches_scalar(self, a):
        data = np.arange(256, dtype=np.uint8)
        vec = gf_mul_bytes(a, data)
        for b in (0, 1, 2, 77, 255):
            assert vec[b] == gf_mul(a, b)

    def test_matrix_inverse_roundtrip(self):
        rng = np.random.default_rng(3)
        for n in (1, 2, 5):
            m = cauchy_matrix(n, n)
            inv = gf_matrix_invert(m)
            eye = gf_matmul(m, inv.astype(np.uint8))
            assert np.array_equal(eye, np.eye(n, dtype=np.uint8))

    def test_singular_matrix_detected(self):
        m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(np.linalg.LinAlgError):
            gf_matrix_invert(m)

    def test_cauchy_bounds(self):
        with pytest.raises(ValueError):
            cauchy_matrix(200, 100)

    def test_vandermonde_first_column_ones(self):
        v = vandermonde_matrix(4, 3)
        assert np.array_equal(v[:, 0], np.ones(4, dtype=np.uint8))


class TestXorPartnerCode:
    def test_roundtrip_single_erasure(self):
        rng = np.random.default_rng(0)
        code = XorPartnerCode(4)
        data = rng.integers(0, 256, size=(4, 64), dtype=np.uint8)
        parity = code.encode(data)
        assert parity.shape == (1, 64)
        lost = 2
        survivors = np.delete(data, lost, axis=0)
        rebuilt = code.recover(survivors, parity[0])
        assert np.array_equal(rebuilt, data[lost])

    def test_multiple_groups(self):
        rng = np.random.default_rng(1)
        code = XorPartnerCode(2)
        data = rng.integers(0, 256, size=(6, 16), dtype=np.uint8)
        parity = code.encode(data)
        assert parity.shape == (3, 16)
        for g in range(3):
            assert np.array_equal(parity[g], data[2 * g] ^ data[2 * g + 1])

    def test_incomplete_group_rejected(self):
        code = XorPartnerCode(4)
        with pytest.raises(ValueError, match="complete groups"):
            code.encode(np.zeros((6, 8), dtype=np.uint8))

    def test_wrong_survivor_count(self):
        code = XorPartnerCode(3)
        with pytest.raises(ValueError, match="survivors"):
            code.recover(np.zeros((1, 8), dtype=np.uint8), np.zeros(8, dtype=np.uint8))

    def test_overhead(self):
        assert XorPartnerCode(8).storage_overhead == pytest.approx(0.125)

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            XorPartnerCode(1)


class TestReedSolomonCode:
    def test_roundtrip_no_erasure(self):
        rng = np.random.default_rng(2)
        code = ReedSolomonCode(5, 3)
        data = rng.integers(0, 256, size=(5, 32), dtype=np.uint8)
        parity = code.encode(data)
        available = {i: data[i] for i in range(5)}
        assert np.array_equal(code.recover(available), data)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), erased=st.sets(st.integers(0, 7), min_size=1, max_size=3))
    def test_recovers_any_m_erasures(self, seed, erased):
        # k=5, m=3: any <=3 of the 8 shards may vanish.
        rng = np.random.default_rng(seed)
        code = ReedSolomonCode(5, 3)
        data = rng.integers(0, 256, size=(5, 24), dtype=np.uint8)
        parity = code.encode(data)
        shards = {i: data[i] for i in range(5)}
        shards.update({5 + j: parity[j] for j in range(3)})
        for i in erased:
            del shards[i]
        assert np.array_equal(code.recover(shards), data)

    def test_too_many_erasures_rejected(self):
        code = ReedSolomonCode(4, 2)
        data = np.zeros((4, 8), dtype=np.uint8)
        with pytest.raises(ValueError, match="unrecoverable"):
            code.recover({0: data[0], 1: data[1], 2: data[2]})

    def test_verify(self):
        rng = np.random.default_rng(4)
        code = ReedSolomonCode(3, 2)
        data = rng.integers(0, 256, size=(3, 16), dtype=np.uint8)
        parity = code.encode(data)
        assert code.verify(data, parity)
        parity[0, 0] ^= 1
        assert not code.verify(data, parity)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(0, 1)
        with pytest.raises(ValueError):
            ReedSolomonCode(200, 60)

    def test_overhead(self):
        assert ReedSolomonCode(8, 2).storage_overhead == pytest.approx(0.25)

    def test_wrong_shard_count(self):
        code = ReedSolomonCode(4, 2)
        with pytest.raises(ValueError, match="exactly 4"):
            code.encode(np.zeros((3, 8), dtype=np.uint8))


class TestHierarchy:
    def machine(self, **kw):
        base = dict(
            nodes=1000,
            checkpoint_gb_per_node=10.0,
            local_write_gb_s=2.0,
            network_gb_s=1.0,
            encode_gb_s=0.5,
            pfs_aggregate_gb_s=200.0,
            pfs_latency_s=30.0,
        )
        base.update(kw)
        return MachineSpec(**base)

    def levels(self):
        return [
            StorageLevel(LevelKind.LOCAL, failure_rate=1e-3),
            StorageLevel(LevelKind.PARTNER, failure_rate=4e-4, group_size=8),
            StorageLevel(LevelKind.RS, failure_rate=1e-4, group_size=8, parity_shards=2),
            StorageLevel(LevelKind.PFS, failure_rate=2e-5),
        ]

    def test_local_cost(self):
        lv = StorageLevel(LevelKind.LOCAL, failure_rate=1e-3)
        # 10 GB / 2 GB/s = 5 s
        assert lv.checkpoint_minutes(self.machine()) == pytest.approx(5 / 60)

    def test_pfs_cost_scales_with_nodes(self):
        lv = StorageLevel(LevelKind.PFS, failure_rate=1e-5)
        small = lv.checkpoint_minutes(self.machine(nodes=100))
        big = lv.checkpoint_minutes(self.machine(nodes=10000))
        assert big > 10 * small  # aggregate bandwidth is shared

    def test_lower_levels_insensitive_to_scale(self):
        # Section IV-E's premise: non-PFS levels use per-node resources.
        for kind in (LevelKind.LOCAL, LevelKind.PARTNER, LevelKind.RS):
            lv = StorageLevel(kind, failure_rate=1e-3)
            a = lv.checkpoint_minutes(self.machine(nodes=10))
            b = lv.checkpoint_minutes(self.machine(nodes=100000))
            assert a == pytest.approx(b)

    def test_build_system_spec(self):
        spec = build_system_spec("derived", self.machine(), self.levels(), 1440.0)
        assert spec.num_levels == 4
        assert sum(spec.severity_probabilities) == pytest.approx(1.0)
        # rates preserved
        assert spec.failure_rate == pytest.approx(
            sum(lv.failure_rate for lv in self.levels())
        )
        # costs non-decreasing by construction
        assert list(spec.checkpoint_times) == sorted(spec.checkpoint_times)

    def test_misordered_hierarchy_rejected(self):
        machine = self.machine(pfs_aggregate_gb_s=1e9, pfs_latency_s=0.0)
        levels = [
            StorageLevel(LevelKind.PARTNER, failure_rate=1e-3),
            StorageLevel(LevelKind.PFS, failure_rate=1e-4),  # cheaper than partner
        ]
        with pytest.raises(ValueError, match="cheaper"):
            build_system_spec("bad", machine, levels, 100.0)

    def test_storage_overheads(self):
        assert StorageLevel(LevelKind.LOCAL, 1e-3).storage_overhead() == 0.0
        assert StorageLevel(
            LevelKind.PARTNER, 1e-3, group_size=4
        ).storage_overhead() == pytest.approx(1.25)
        assert StorageLevel(
            LevelKind.RS, 1e-3, group_size=8, parity_shards=2
        ).storage_overhead() == pytest.approx(0.25)

    def test_machine_validation(self):
        with pytest.raises(ValueError):
            self.machine(nodes=0)
        with pytest.raises(ValueError):
            self.machine(local_write_gb_s=0.0)
        with pytest.raises(ValueError):
            self.machine(pfs_latency_s=-1.0)

    def test_level_validation(self):
        with pytest.raises(ValueError):
            StorageLevel(LevelKind.LOCAL, failure_rate=0.0)
        with pytest.raises(ValueError):
            StorageLevel(LevelKind.PARTNER, failure_rate=1e-3, group_size=1)

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            build_system_spec("x", self.machine(), [], 100.0)

    def test_spec_usable_by_models(self):
        from repro.core import DauweModel

        spec = build_system_spec("derived", self.machine(), self.levels(), 720.0)
        res = DauweModel(spec).optimize()
        assert 0 < res.predicted_efficiency <= 1.0
