"""Shared fixtures: small systems with hand-checkable properties."""

from __future__ import annotations

import pytest

from repro.systems import SystemSpec, get_system

try:
    from hypothesis import HealthCheck, settings

    # CI runs with --hypothesis-profile=ci: derandomized (same examples
    # on every run, so a red build is reproducible locally), no deadline
    # (shared runners have noisy clocks), and the suppressed health check
    # allows the module-scoped model instances the property tests reuse.
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        max_examples=60,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
except ImportError:  # hypothesis is a dev extra; tests skip without it
    pass


@pytest.fixture
def tiny2() -> SystemSpec:
    """A 2-level system with round numbers for hand computation."""
    return SystemSpec(
        name="tiny2",
        mtbf=100.0,
        level_probabilities=(0.8, 0.2),
        checkpoint_times=(1.0, 5.0),
        baseline_time=240.0,
        description="synthetic test system",
    )


@pytest.fixture
def tiny3() -> SystemSpec:
    """A 3-level system, moderately failure-prone."""
    return SystemSpec(
        name="tiny3",
        mtbf=50.0,
        level_probabilities=(0.6, 0.3, 0.1),
        checkpoint_times=(0.5, 2.0, 8.0),
        baseline_time=480.0,
        description="synthetic test system",
    )


@pytest.fixture
def system_b() -> SystemSpec:
    return get_system("B")


@pytest.fixture
def system_m() -> SystemSpec:
    return get_system("M")


@pytest.fixture
def system_d9() -> SystemSpec:
    return get_system("D9")
