"""Unit + property tests for the Eqn. 1-2 probability machinery."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.truncated import (
    expected_failed_attempts,
    expected_failures,
    failure_probability,
    survival_probability,
    truncated_mean,
    unprotected_completion_time,
)

rates = st.floats(min_value=1e-6, max_value=10.0, allow_nan=False)
times = st.floats(min_value=1e-6, max_value=1e4, allow_nan=False)


class TestFailureProbability:
    def test_zero_interval(self):
        assert failure_probability(0.0, 0.5) == 0.0

    def test_known_value(self):
        # P(t, X) = 1 - e^{-Xt}; X t = 1 -> 1 - 1/e
        assert failure_probability(2.0, 0.5) == pytest.approx(1 - math.exp(-1))

    def test_matches_printed_equation(self):
        for t in (0.01, 1.0, 7.3, 100.0):
            for x in (1e-4, 0.02, 1.5):
                assert failure_probability(t, x) == pytest.approx(1 - math.exp(-x * t))

    def test_complement_of_survival(self):
        t, x = 3.7, 0.21
        assert failure_probability(t, x) + survival_probability(t, x) == pytest.approx(1.0)

    def test_vectorized(self):
        t = np.array([0.0, 1.0, 2.0])
        out = failure_probability(t, 1.0)
        assert out.shape == (3,)
        assert out[0] == 0.0
        assert out[2] > out[1] > 0

    @given(t=times, x=rates)
    def test_in_unit_interval(self, t, x):
        p = failure_probability(t, x)
        assert 0.0 <= p < 1.0 or p == pytest.approx(1.0)

    @given(t=times, x=rates)
    def test_monotone_in_time(self, t, x):
        assert failure_probability(1.5 * t, x) >= failure_probability(t, x)


class TestTruncatedMean:
    def test_matches_printed_equation(self):
        # E(t,X) = [1/X - e^{-Xt}(1/X + t)] / P(t,X)  (Eqn. 2, as printed)
        for t in (0.5, 3.0, 40.0):
            for x in (0.01, 0.3, 2.0):
                p = 1 - math.exp(-x * t)
                printed = (1 / x - math.exp(-x * t) * (1 / x + t)) / p
                assert truncated_mean(t, x) == pytest.approx(printed, rel=1e-10)

    def test_small_rate_limit_is_half_interval(self):
        # Failures uniform over a short interval: E -> t/2.
        assert truncated_mean(10.0, 1e-12) == pytest.approx(5.0, rel=1e-6)

    def test_large_rate_limit_is_mean(self):
        # Truncation irrelevant when X t >> 1: E -> 1/X.
        assert truncated_mean(1e6, 2.0) == pytest.approx(0.5, rel=1e-9)

    def test_zero_interval(self):
        assert truncated_mean(0.0, 1.0) == pytest.approx(0.0, abs=1e-12)

    def test_continuity_across_small_threshold(self):
        # The series branch and the expm1 branch must agree at the seam:
        # E(t, X)/t is ~1/2 on both sides of the xt = 1e-8 switch.
        x = 1.0
        below = truncated_mean(0.99e-8, x) / 0.99e-8
        above = truncated_mean(1.01e-8, x) / 1.01e-8
        assert below == pytest.approx(above, rel=1e-6)
        assert below == pytest.approx(0.5, rel=1e-6)

    @given(t=times, x=rates)
    def test_bounded_by_interval_and_mean(self, t, x):
        e = truncated_mean(t, x)
        assert 0.0 <= e <= min(t, 1.0 / x) + 1e-9

    @given(t=times, x=rates)
    def test_below_midpoint(self, t, x):
        # Early failures are likelier, so the truncated mean is < t/2.
        assert truncated_mean(t, x) <= t / 2.0 + 1e-9

    def test_vectorized_matches_scalar(self):
        ts = np.array([0.1, 1.0, 10.0, 1000.0])
        vec = truncated_mean(ts, 0.05)
        for i, t in enumerate(ts):
            assert vec[i] == pytest.approx(truncated_mean(float(t), 0.05))


class TestExpectedFailures:
    def test_negative_binomial_identity(self):
        # P/(1-P) = expm1(Xt).
        t, x = 2.0, 0.3
        p = failure_probability(t, x)
        assert expected_failures(t, x) == pytest.approx(p / (1 - p))

    def test_scales_with_successes(self):
        assert expected_failed_attempts(2.0, 0.3, 10) == pytest.approx(
            10 * expected_failures(2.0, 0.3)
        )

    @given(t=times, x=rates)
    def test_nonnegative(self, t, x):
        assert expected_failures(t, x) >= 0.0

    def test_overflow_is_inf_not_error(self):
        assert math.isinf(expected_failures(1e6, 10.0))


class TestUnprotectedCompletion:
    def test_no_failures_is_work(self):
        assert unprotected_completion_time(100.0, 1e-15, 5.0) == pytest.approx(100.0)

    def test_matches_renewal_identity(self):
        w, x, r = 50.0, 0.02, 3.0
        expected = w + expected_failures(w, x) * (truncated_mean(w, x) + r)
        assert unprotected_completion_time(w, x, r) == pytest.approx(expected)

    @given(w=times, x=rates, r=st.floats(min_value=0, max_value=100))
    def test_at_least_work(self, w, x, r):
        assert unprotected_completion_time(w, x, r) >= w - 1e-9

    def test_monotone_in_rate(self):
        a = unprotected_completion_time(100.0, 0.01, 5.0)
        b = unprotected_completion_time(100.0, 0.02, 5.0)
        assert b > a

    def test_monotone_in_restart_cost(self):
        a = unprotected_completion_time(100.0, 0.01, 1.0)
        b = unprotected_completion_time(100.0, 0.01, 10.0)
        assert b > a

    def test_overflow_is_inf(self):
        assert math.isinf(unprotected_completion_time(1e6, 1.0, 1.0))

    @settings(max_examples=40)
    @given(w=st.floats(min_value=1.0, max_value=100.0))
    def test_against_monte_carlo(self, w):
        # Renewal formula vs direct simulation of restart-from-scratch.
        x, r = 0.02, 2.0
        rng = np.random.default_rng(int(w * 1000) % 2**31)
        total = 0.0
        n = 400
        for _ in range(n):
            t = 0.0
            while True:
                gap = rng.exponential(1 / x)
                if gap >= w:
                    t += w
                    break
                t += gap + r
            total += t
        mc = total / n
        analytic = unprotected_completion_time(w, x, r)
        assert mc == pytest.approx(analytic, rel=0.25)
