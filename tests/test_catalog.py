"""Pin every Table I value and the Figure 4/5 scenario grids."""

from __future__ import annotations

import pytest

from repro.systems import (
    TEST_SYSTEM_ORDER,
    TEST_SYSTEMS,
    exascale_grid,
    exascale_mtbf_values,
    exascale_top_costs,
    get_system,
)

# (name, levels, mtbf, probabilities, c/r times, baseline) — Table I verbatim.
TABLE1 = [
    ("M", 3, 6944.45, (0.083, 0.75, 0.167), (0.008, 0.075, 17.53), 1440.0),
    ("B", 4, 333.33, (0.556, 0.278, 0.139, 0.027), (0.167, 0.5, 0.833, 2.5), 1440.0),
    ("D1", 2, 51.42, (0.857, 0.143), (0.333, 0.833), 1440.0),
    ("D2", 2, 24.0, (0.833, 0.167), (0.333, 0.833), 1440.0),
    ("D3", 2, 12.0, (0.833, 0.167), (0.167, 0.667), 1440.0),
    ("D4", 2, 6.0, (0.833, 0.167), (0.167, 0.667), 1440.0),
    ("D5", 2, 12.0, (0.833, 0.167), (0.333, 1.67), 1440.0),
    ("D6", 2, 6.0, (0.833, 0.167), (0.167, 1.67), 720.0),
    ("D7", 2, 4.0, (0.833, 0.167), (0.667, 3.33), 360.0),
    ("D8", 2, 3.13, (0.870, 0.130), (0.833, 5.0), 360.0),
    ("D9", 2, 3.13, (0.870, 0.130), (0.833, 5.0), 180.0),
]


class TestTable1:
    @pytest.mark.parametrize("row", TABLE1, ids=[r[0] for r in TABLE1])
    def test_values_verbatim(self, row):
        name, levels, mtbf, probs, times, baseline = row
        spec = TEST_SYSTEMS[name]
        assert spec.num_levels == levels
        assert spec.mtbf == pytest.approx(mtbf)
        assert spec.level_probabilities == pytest.approx(probs)
        assert spec.checkpoint_times == pytest.approx(times)
        assert spec.baseline_time == pytest.approx(baseline)

    def test_order_matches_table(self):
        assert TEST_SYSTEM_ORDER == tuple(r[0] for r in TABLE1)

    def test_all_systems_listed(self):
        assert set(TEST_SYSTEMS) == set(TEST_SYSTEM_ORDER)

    def test_get_system_case_insensitive(self):
        assert get_system("d4") is TEST_SYSTEMS["D4"]

    def test_get_system_unknown(self):
        with pytest.raises(KeyError, match="unknown test system"):
            get_system("Z1")

    def test_difficulty_trend(self):
        # Difficulty grows along the rows via falling MTBF and/or rising
        # C/R costs: the MTBF-to-top-cost ratio never improves D1 -> D9.
        ratios = [
            TEST_SYSTEMS[n].mtbf / TEST_SYSTEMS[n].checkpoint_times[-1]
            for n in TEST_SYSTEM_ORDER[2:]
        ]
        assert all(b <= a + 1e-9 for a, b in zip(ratios, ratios[1:]))


class TestExascaleGrid:
    def test_mtbf_values_in_paper_range(self):
        vals = exascale_mtbf_values()
        assert len(vals) == 5
        assert max(vals) == 26.0 and min(vals) == 3.0
        assert all(3.0 <= v <= 26.0 for v in vals)

    def test_top_costs(self):
        assert exascale_top_costs() == (10.0, 20.0, 30.0, 40.0)
        assert exascale_top_costs(short_application=True) == (10.0, 20.0)

    def test_long_grid_has_20_scenarios(self):
        grid = exascale_grid()
        assert len(grid) == 20
        assert all(s.baseline_time == 1440.0 for s in grid)

    def test_short_grid_has_10_scenarios(self):
        grid = exascale_grid(short_application=True)
        assert len(grid) == 10
        assert all(s.baseline_time == 30.0 for s in grid)

    def test_scenarios_derived_from_b(self):
        b = TEST_SYSTEMS["B"]
        for spec in exascale_grid():
            assert spec.num_levels == 4
            assert spec.level_probabilities == b.level_probabilities
            # lower levels untouched
            assert spec.checkpoint_times[:3] == b.checkpoint_times[:3]
            assert spec.checkpoint_times[-1] in exascale_top_costs()
            assert spec.mtbf in exascale_mtbf_values()

    def test_scenario_names_unique(self):
        names = [s.name for s in exascale_grid()]
        assert len(set(names)) == len(names)
