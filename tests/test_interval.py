"""Tests for interval-based schedules, their simulator, and the optimizer."""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.core import CheckpointPlan, DauweModel
from repro.failures import TraceFailureSource
from repro.interval import (
    IntervalModel,
    IntervalSchedule,
    simulate_schedule_many,
    simulate_schedule_trial,
)
from repro.simulator import simulate_trial
from repro.systems import SystemSpec, get_system


def spec2():
    return SystemSpec(
        name="i2",
        mtbf=60.0,
        level_probabilities=(0.8, 0.2),
        checkpoint_times=(0.5, 2.0),
        baseline_time=60.0,
    )


class TestSchedule:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            IntervalSchedule(levels=(), periods=())
        with pytest.raises(ValueError, match="ascending"):
            IntervalSchedule(levels=(2, 1), periods=(1.0, 2.0))
        with pytest.raises(ValueError, match="periods"):
            IntervalSchedule(levels=(1, 2), periods=(1.0,))
        with pytest.raises(ValueError, match="positive"):
            IntervalSchedule(levels=(1,), periods=(0.0,))
        with pytest.raises(ValueError, match="more often"):
            IntervalSchedule(levels=(1, 2), periods=(5.0, 2.0))

    def test_positions_basic(self):
        s = IntervalSchedule(levels=(1, 2), periods=(3.0, 7.0))
        pos = s.positions(20.0)
        # L1 at 3,6,9,12,15,18; L2 at 7,14
        works = [w for w, _ in pos]
        assert works == [3.0, 6.0, 7.0, 9.0, 12.0, 14.0, 15.0, 18.0]
        lv = dict(pos)
        assert lv[7.0] == 1 and lv[14.0] == 1  # used-level index of L2
        assert lv[3.0] == 0

    def test_simultaneous_positions_merge_to_highest(self):
        s = IntervalSchedule(levels=(1, 2), periods=(2.0, 6.0))
        pos = s.positions(12.0)
        # position 6: both levels due -> one checkpoint, level index 1 (L2)
        at6 = [k for w, k in pos if w == 6.0]
        assert at6 == [1]
        assert len([w for w, _ in pos if w == 6.0]) == 1

    def test_horizon_exclusion(self):
        s = IntervalSchedule(levels=(1,), periods=(5.0,))
        assert [w for w, _ in s.positions(10.0)] == [5.0]
        assert [w for w, _ in s.positions(10.0, include_horizon=True)] == [5.0, 10.0]

    def test_recovery_level(self):
        s = IntervalSchedule(levels=(2, 3), periods=(2.0, 9.0))
        assert s.recovery_level(1) == 2
        assert s.recovery_level(3) == 3
        assert s.recovery_level(4) is None

    def test_from_plan_reproduces_pattern_positions(self):
        plan = CheckpointPlan((1, 2, 3), tau0=2.0, counts=(2, 1))
        s = IntervalSchedule.from_plan(plan)
        pos = s.positions(36.0 + 1e-6)
        for w, k in pos:
            m = round(w / 2.0)
            assert plan.level_at_position(m) == s.levels[k]

    def test_describe(self):
        s = IntervalSchedule(levels=(1, 2), periods=(3.0, 7.5))
        assert "L2 every 7.5min" in s.describe()


class TestScheduleSimulator:
    def test_failure_free_matches_position_costs(self):
        s = IntervalSchedule(levels=(1, 2), periods=(10.0, 25.0))
        r = simulate_schedule_trial(spec2(), s, source=TraceFailureSource([], []))
        # positions: 10,20,25,30,40,50; 60 == T_B skipped.  At 50 both
        # levels coincide and merge into a single L2 checkpoint.
        assert r.completed
        assert r.checkpoints_completed == 6
        assert r.times.checkpoint == pytest.approx(4 * 0.5 + 2 * 2.0)
        assert r.total_time == pytest.approx(60.0 + 6.0)

    def test_recovery_uses_newest_sufficient_position(self):
        s = IntervalSchedule(levels=(1, 2), periods=(10.0, 25.0))
        # fail (sev 1) during compute after the L2@25 checkpoint:
        # timeline: c10 d.5 c10 d.5 c5 d2 c5 d.5 ... at t=34 work =
        # 10+10+5+(34-33)=26? -> verify via accounting invariants instead.
        r = simulate_schedule_trial(
            spec2(), s, source=TraceFailureSource([34.0], [1])
        )
        assert r.completed
        assert r.restarts_completed == 1
        assert r.times.total() == pytest.approx(r.total_time)

    def test_severity2_needs_level2_position(self):
        s = IntervalSchedule(levels=(1, 2), periods=(10.0, 25.0))
        # sev-2 failure before any L2 checkpoint -> scratch restart
        r = simulate_schedule_trial(
            spec2(), s, source=TraceFailureSource([12.0], [2])
        )
        assert r.scratch_restarts == 1
        assert r.completed

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_nested_schedule_matches_pattern_engine(self, seed):
        """A nested interval schedule is exactly a pattern plan."""
        spec = get_system("D1").with_baseline_time(120.0)
        plan = CheckpointPlan((1, 2), tau0=6.0, counts=(2,))
        schedule = IntervalSchedule.from_plan(plan)
        rng = np.random.default_rng(seed)
        t, times, sevs = 0.0, [], []
        while t < 1000.0:
            t += rng.exponential(spec.mtbf)
            times.append(t)
            sevs.append(int(rng.integers(1, 3)))
        a = simulate_trial(
            spec, plan, source=TraceFailureSource(times, sevs), max_time=800.0
        )
        b = simulate_schedule_trial(
            spec, schedule, source=TraceFailureSource(times, sevs), max_time=800.0
        )
        assert a.total_time == pytest.approx(b.total_time, rel=1e-9)
        assert a.work_done == pytest.approx(b.work_done, rel=1e-9)
        assert a.checkpoints_completed == b.checkpoints_completed
        assert a.restarts_completed == b.restarts_completed
        for f in dataclasses.fields(a.times):
            assert getattr(a.times, f.name) == pytest.approx(
                getattr(b.times, f.name), abs=1e-9
            ), f.name

    def test_validation(self):
        s = IntervalSchedule(levels=(1, 5), periods=(1.0, 2.0))
        with pytest.raises(ValueError, match="levels"):
            simulate_schedule_trial(spec2(), s, rng=0)
        good = IntervalSchedule(levels=(1,), periods=(5.0,))
        with pytest.raises(ValueError, match="restart_semantics"):
            simulate_schedule_trial(spec2(), good, rng=0, restart_semantics="x")

    def test_many_aggregates(self):
        s = IntervalSchedule(levels=(1, 2), periods=(5.0, 20.0))
        stats = simulate_schedule_many(spec2(), s, trials=10, seed=4)
        assert stats.trials == 10
        assert 0 < stats.mean_efficiency <= 1.0

    def test_many_reproducible(self):
        s = IntervalSchedule(levels=(1, 2), periods=(5.0, 20.0))
        a = simulate_schedule_many(spec2(), s, trials=8, seed=9)
        b = simulate_schedule_many(spec2(), s, trials=8, seed=9)
        assert np.array_equal(a.efficiencies, b.efficiencies)


class TestIntervalModel:
    def test_predict_no_failures_limit(self):
        spec = SystemSpec(
            name="q",
            mtbf=1e9,
            level_probabilities=(1.0,),
            checkpoint_times=(2.0,),
            baseline_time=100.0,
        )
        model = IntervalModel(spec)
        s = IntervalSchedule(levels=(1,), periods=(10.0,))
        assert model.predict_time(s) == pytest.approx(100.0 + 10 * 2.0, rel=1e-3)

    def test_single_level_matches_daly(self):
        from repro.models import DalyModel

        spec = get_system("D4")
        itv = IntervalModel(spec, allow_level_skipping=False)
        daly = DalyModel(spec)
        # restrict interval model to a single-level system view: build a
        # schedule at Daly's optimum on the top level of a 1-level system
        one = SystemSpec(
            name="one",
            mtbf=spec.mtbf,
            level_probabilities=(1.0,),
            checkpoint_times=(spec.checkpoint_times[-1],),
            baseline_time=spec.baseline_time,
        )
        res = IntervalModel(one).optimize()
        daly_res = DalyModel(one).optimize()
        assert res.schedule.periods[0] == pytest.approx(daly_res.plan.tau0, rel=0.01)
        assert res.predicted_time == pytest.approx(daly_res.predicted_time, rel=1e-6)

    def test_optimize_returns_monotone_periods(self):
        res = IntervalModel(get_system("B")).optimize()
        assert list(res.schedule.periods) == sorted(res.schedule.periods)
        assert 0 < res.predicted_efficiency <= 1.0

    def test_optimizer_matches_simulation_reasonably(self):
        spec = get_system("D4")
        res = IntervalModel(spec).optimize()
        stats = simulate_schedule_many(spec, res.schedule, trials=40, seed=2)
        assert res.predicted_efficiency == pytest.approx(
            stats.mean_efficiency, abs=0.05
        )

    def test_short_app_skips_top_level(self):
        spec = SystemSpec(
            name="short",
            mtbf=10.0,
            level_probabilities=(0.99, 0.01),
            checkpoint_times=(0.1, 30.0),
            baseline_time=30.0,
        )
        res = IntervalModel(spec).optimize()
        assert res.schedule.levels == (1,)

    def test_no_skipping_keeps_all_levels(self):
        res = IntervalModel(get_system("B"), allow_level_skipping=False).optimize()
        assert res.schedule.levels == (1, 2, 3, 4)
