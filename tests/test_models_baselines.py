"""Tests for the prior-work models: Daly, Young, Moody, Di, Benoit."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import CheckpointPlan, DauweModel
from repro.models import (
    BenoitModel,
    DalyModel,
    DiModel,
    MoodyModel,
    TECHNIQUES,
    YoungModel,
    daly_optimum_interval,
    make_model,
    young_optimum_interval,
)
from repro.systems import SystemSpec


class TestClosedForms:
    def test_young_interval(self):
        assert young_optimum_interval(2.0, 100.0) == pytest.approx(20.0)

    def test_daly_reduces_to_young_for_cheap_checkpoints(self):
        # delta << M: higher-order correction vanishes.
        delta, M = 1e-4, 1e4
        assert daly_optimum_interval(delta, M) == pytest.approx(
            young_optimum_interval(delta, M), rel=1e-2
        )

    def test_daly_degenerate_branch(self):
        # delta >= 2M -> tau_opt = M.
        assert daly_optimum_interval(300.0, 100.0) == 100.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            daly_optimum_interval(-1.0, 10.0)
        with pytest.raises(ValueError):
            young_optimum_interval(1.0, 0.0)


class TestDalyModel:
    def test_cost_formula(self, tiny2):
        model = DalyModel(tiny2)
        tau = 20.0
        plan = CheckpointPlan.single_level(2, tau)
        M = tiny2.mtbf
        delta = R = tiny2.checkpoint_time(2)
        expected = (
            M
            * math.exp(R / M)
            * math.expm1((tau + delta) / M)
            * tiny2.baseline_time
            / tau
        )
        assert model.predict_time(plan) == pytest.approx(expected, rel=1e-12)

    def test_only_top_level(self, tiny3):
        model = DalyModel(tiny3)
        assert model.candidate_level_subsets() == [(3,)]
        with pytest.raises(ValueError, match="single-level"):
            model.predict_time(CheckpointPlan((1, 3), 5.0, (2,)))

    def test_optimize_close_to_closed_form_on_easy_system(self, system_m):
        model = DalyModel(system_m)
        res = model.optimize()
        # On M (MTBF ~6944, delta_L 17.53) Daly's closed form is accurate.
        assert res.plan.tau0 == pytest.approx(model.closed_form_interval, rel=0.15)

    def test_prediction_no_failures_limit(self):
        spec = SystemSpec(
            name="q",
            mtbf=1e9,
            level_probabilities=(1.0,),
            checkpoint_times=(2.0,),
            baseline_time=100.0,
        )
        t = DalyModel(spec).predict_time(CheckpointPlan.single_level(1, 10.0))
        assert t == pytest.approx(100.0 + 10 * 2.0, rel=1e-3)

    def test_batch_matches_scalar(self, tiny2):
        model = DalyModel(tiny2)
        taus = np.geomspace(1.0, 100.0, 9)
        batch = model.predict_time_batch((2,), (), taus)
        for i, t in enumerate(taus):
            assert batch[i] == pytest.approx(
                model.predict_time(CheckpointPlan.single_level(2, float(t)))
            )


class TestYoungModel:
    def test_uses_first_order_interval(self, tiny2):
        res = YoungModel(tiny2).optimize()
        assert res.plan.tau0 == pytest.approx(
            young_optimum_interval(tiny2.checkpoint_time(2), tiny2.mtbf)
        )

    def test_never_better_than_daly(self, system_d9):
        young = YoungModel(system_d9).optimize()
        daly = DalyModel(system_d9).optimize()
        assert daly.predicted_time <= young.predicted_time + 1e-9


class TestDiModel:
    def test_top_two_levels_on_four_level_system(self, system_b):
        subsets = DiModel(system_b).candidate_level_subsets()
        assert (3, 4) in subsets
        assert (3,) in subsets
        assert all(set(s) <= {3, 4} for s in subsets)

    def test_two_level_system_uses_both(self, tiny2):
        subsets = DiModel(tiny2).candidate_level_subsets()
        assert subsets[0] == (1, 2)

    def test_single_level_system(self):
        spec = SystemSpec(
            name="one",
            mtbf=100.0,
            level_probabilities=(1.0,),
            checkpoint_times=(2.0,),
            baseline_time=100.0,
        )
        assert DiModel(spec).candidate_level_subsets() == [(1,)]

    def test_ignores_restart_failures(self, tiny2):
        # Di == Dauwe minus restart-failure terms, so on the same plan Di
        # must be strictly more optimistic (restarts happen everywhere).
        plan = CheckpointPlan((1, 2), 5.0, (2,))
        assert DiModel(tiny2).predict_time(plan) < DauweModel(tiny2).predict_time(plan)

    def test_matches_dauwe_ablation(self, tiny2):
        plan = CheckpointPlan((1, 2), 5.0, (2,))
        ablated = DauweModel(tiny2, include_restart_failures=False)
        assert DiModel(tiny2).predict_time(plan) == pytest.approx(
            ablated.predict_time(plan), rel=1e-12
        )


class TestMoodyModel:
    def test_full_levels_only(self, tiny3):
        model = MoodyModel(tiny3)
        assert model.candidate_level_subsets() == [(1, 2, 3)]
        with pytest.raises(ValueError, match="full"):
            model.predict_time(CheckpointPlan((1, 2), 5.0, (1,)))

    def test_prediction_independent_of_baseline_scale(self, tiny3):
        # Steady-state: efficiency of a pattern doesn't depend on T_B,
        # so predicted time scales exactly linearly with T_B.
        plan = CheckpointPlan((1, 2, 3), 5.0, (2, 2))
        t1 = MoodyModel(tiny3).predict_time(plan)
        doubled = tiny3.with_baseline_time(tiny3.baseline_time * 2)
        t2 = MoodyModel(doubled).predict_time(plan)
        assert t2 == pytest.approx(2 * t1, rel=1e-9)

    def test_escalation_is_pessimistic(self, system_d9):
        plan = CheckpointPlan((1, 2), 2.0, (3,))
        esc = MoodyModel(system_d9, escalating_restarts=True).predict_time(plan)
        ret = MoodyModel(system_d9, escalating_restarts=False).predict_time(plan)
        assert esc > ret

    def test_escalation_negligible_on_reliable_system(self, system_m):
        plan = CheckpointPlan((1, 2, 3), 20.0, (1, 20))
        esc = MoodyModel(system_m, escalating_restarts=True).predict_time(plan)
        ret = MoodyModel(system_m, escalating_restarts=False).predict_time(plan)
        assert esc == pytest.approx(ret, rel=1e-3)

    def test_pattern_efficiency_in_unit_interval(self, tiny3):
        model = MoodyModel(tiny3)
        eff = model.pattern_efficiency(CheckpointPlan((1, 2, 3), 5.0, (2, 2)))
        assert 0.0 < eff < 1.0

    def test_takes_scheduled_end_checkpoint(self, tiny3):
        assert MoodyModel(tiny3).takes_scheduled_end_checkpoint is True

    def test_batch_matches_scalar(self, tiny3):
        model = MoodyModel(tiny3)
        taus = np.geomspace(1.0, 50.0, 7)
        batch = model.predict_time_batch((1, 2, 3), (2, 1), taus)
        for i, t in enumerate(taus):
            assert batch[i] == pytest.approx(
                model.predict_time(CheckpointPlan((1, 2, 3), float(t), (2, 1)))
            )


class TestBenoitModel:
    def test_ignores_failures_during_cr(self, quiet_check=None):
        # With failures only during computation, prediction must be below
        # the Dauwe model's for the same plan on a failure-heavy system.
        spec = SystemSpec(
            name="hard",
            mtbf=5.0,
            level_probabilities=(0.8, 0.2),
            checkpoint_times=(0.5, 3.0),
            baseline_time=200.0,
        )
        plan = CheckpointPlan((1, 2), 2.0, (3,))
        assert BenoitModel(spec).predict_time(plan) < DauweModel(spec).predict_time(
            plan
        )

    def test_chooses_longer_intervals_than_dauwe(self, system_d9):
        b = BenoitModel(system_d9).optimize()
        d = DauweModel(system_d9).optimize()
        assert b.plan.tau0 > d.plan.tau0

    def test_no_failure_limit_matches_checkpoint_overhead(self):
        spec = SystemSpec(
            name="q",
            mtbf=1e12,
            level_probabilities=(0.5, 0.5),
            checkpoint_times=(1.0, 4.0),
            baseline_time=120.0,
        )
        plan = CheckpointPlan((1, 2), 10.0, (2,))
        # densities: exactly-level-1 positions 1/10-1/30, level-2 1/30.
        h = 1.0 * (1 / 10 - 1 / 30) + 4.0 * (1 / 30)
        assert BenoitModel(spec).predict_time(plan) == pytest.approx(
            120.0 * (1 + h), rel=1e-6
        )

    def test_full_levels_only(self, tiny3):
        with pytest.raises(ValueError, match="full"):
            BenoitModel(tiny3).predict_time(CheckpointPlan((1, 3), 5.0, (1,)))

    def test_takes_scheduled_end_checkpoint(self, tiny3):
        assert BenoitModel(tiny3).takes_scheduled_end_checkpoint is True


class TestRegistry:
    def test_all_techniques_constructible(self, tiny2):
        for name in TECHNIQUES:
            model = make_model(name, tiny2)
            assert model.system is tiny2
            res = model.optimize()
            assert 0 < res.predicted_efficiency <= 1.0

    def test_unknown_technique(self, tiny2):
        with pytest.raises(KeyError, match="unknown technique"):
            make_model("nope", tiny2)

    def test_paper_figure_order(self):
        assert list(TECHNIQUES)[:5] == ["dauwe", "di", "moody", "benoit", "daly"]

    def test_model_options_forwarded(self, tiny2):
        model = make_model("moody", tiny2, escalating_restarts=False)
        assert model.escalating_restarts is False
