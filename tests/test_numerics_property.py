"""Property test: any spec that survives validation is safe to evaluate.

Hypothesis generates *hostile* systems — magnitudes spanning twenty-plus
orders, severity shares pinched to slivers, free and mammoth checkpoints.
The only filter is :class:`SystemSpec` validation itself; anything it
accepts must yield finite-or-``+inf`` (never NaN) predictions from all
five models at any in-domain ``tau0``, with every ``+inf`` accompanied by
a recorded :class:`NumericsEvent` (the loudness invariant).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.numerics import ModelDiagnostics
from repro.models import make_model
from repro.systems import SystemSpec, boundary_taus

ALL_TECHNIQUES = ("dauwe", "di", "moody", "benoit", "daly")

#: Magnitudes deliberately beyond any physical system: the point is that
#: *validation*, not model goodwill, is the only gate.
_extreme = st.floats(
    min_value=1e-9, max_value=1e12, allow_nan=False, allow_infinity=False
)


@st.composite
def hostile_systems(draw):
    levels = draw(st.integers(min_value=1, max_value=4))
    # Severity shares: raw positive weights, renormalized by the spec.
    weights = [
        draw(st.floats(min_value=1e-6, max_value=1.0)) for _ in range(levels)
    ]
    total = sum(weights)
    probs = tuple(w / total for w in weights)
    # Non-decreasing checkpoint costs, zero allowed (free checkpoints).
    base = draw(st.floats(min_value=0.0, max_value=1e6))
    costs = [base]
    for _ in range(levels - 1):
        costs.append(costs[-1] + draw(st.floats(min_value=0.0, max_value=1e6)))
    return SystemSpec(
        name="hostile",
        mtbf=draw(_extreme),
        level_probabilities=probs,
        checkpoint_times=tuple(costs),
        baseline_time=draw(_extreme),
    )


class TestSurvivingSpecsNeverNaN:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
    )
    @given(spec=hostile_systems())
    def test_all_models_finite_or_inf_and_loud(self, spec):
        taus = np.asarray(boundary_taus(spec), dtype=float)
        for technique in ALL_TECHNIQUES:
            model = make_model(technique, spec)
            diag = ModelDiagnostics()
            for levels in model.candidate_level_subsets():
                counts = (3,) * (len(levels) - 1)
                out = np.asarray(
                    model.predict_time_batch(
                        levels, counts, taus, diagnostics=diag
                    ),
                    dtype=float,
                )
                assert not np.isnan(out).any(), (
                    f"{technique} produced NaN on {spec.summary()}"
                )
                finite = np.isfinite(out)
                assert (out[finite] > 0).all(), (
                    f"{technique} produced a non-positive finite time "
                    f"on {spec.summary()}"
                )
                if np.isinf(out).any():
                    assert diag.total > 0, (
                        f"{technique} produced silent +inf on {spec.summary()}"
                    )
