"""Unit + property tests for CheckpointPlan geometry."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import CheckpointPlan


def plans(max_levels: int = 4):
    @st.composite
    def _plans(draw):
        u = draw(st.integers(min_value=1, max_value=max_levels))
        levels = tuple(
            sorted(
                draw(
                    st.sets(
                        st.integers(min_value=1, max_value=6),
                        min_size=u,
                        max_size=u,
                    )
                )
            )
        )
        counts = tuple(
            draw(st.integers(min_value=1, max_value=5)) for _ in range(u - 1)
        )
        tau0 = draw(st.floats(min_value=0.01, max_value=100.0))
        return CheckpointPlan(levels=levels, tau0=tau0, counts=counts)

    return _plans()


class TestValidation:
    def test_requires_levels(self):
        with pytest.raises(ValueError, match="at least one"):
            CheckpointPlan(levels=(), tau0=1.0)

    def test_levels_ascending(self):
        with pytest.raises(ValueError, match="ascending"):
            CheckpointPlan(levels=(2, 1), tau0=1.0, counts=(1,))

    def test_levels_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            CheckpointPlan(levels=(0, 1), tau0=1.0, counts=(1,))

    def test_counts_length(self):
        with pytest.raises(ValueError, match="counts"):
            CheckpointPlan(levels=(1, 2), tau0=1.0, counts=())

    def test_counts_nonnegative(self):
        with pytest.raises(ValueError, match="non-negative"):
            CheckpointPlan(levels=(1, 2), tau0=1.0, counts=(-1,))

    def test_tau0_positive(self):
        with pytest.raises(ValueError, match="tau0"):
            CheckpointPlan(levels=(1,), tau0=0.0)
        with pytest.raises(ValueError, match="tau0"):
            CheckpointPlan(levels=(1,), tau0=math.inf)


class TestPatternGeometry:
    def test_figure1_pattern(self):
        # The paper's Figure 1: two level-1 checkpoints before each level-2,
        # one level-2 before each level-3.
        plan = CheckpointPlan(levels=(1, 2, 3), tau0=1.0, counts=(2, 1))
        seq = [plan.level_at_position(m) for m in range(1, 13)]
        assert seq == [1, 1, 2, 1, 1, 3, 1, 1, 2, 1, 1, 3]

    def test_strides(self):
        plan = CheckpointPlan(levels=(1, 2, 3), tau0=2.0, counts=(2, 1))
        assert plan.stride(0) == 1
        assert plan.stride(1) == 3
        assert plan.stride(2) == 6
        assert plan.work_between(0) == 2.0
        assert plan.work_between(2) == 12.0
        assert plan.pattern_work == 12.0

    def test_single_level(self):
        plan = CheckpointPlan.single_level(3, 7.0)
        assert plan.levels == (3,)
        assert plan.pattern_work == 7.0
        assert all(plan.level_at_position(m) == 3 for m in range(1, 10))

    def test_uniform_constructor(self):
        plan = CheckpointPlan.uniform(3, 1.5, 2)
        assert plan.levels == (1, 2, 3)
        assert plan.counts == (2, 2)

    def test_zero_count_promotes_every_position(self):
        plan = CheckpointPlan(levels=(1, 2), tau0=1.0, counts=(0,))
        assert [plan.level_at_position(m) for m in (1, 2, 3)] == [2, 2, 2]

    def test_positions_one_based(self):
        plan = CheckpointPlan(levels=(1,), tau0=1.0)
        with pytest.raises(ValueError, match="1-based"):
            plan.level_at_position(0)

    @given(plans())
    def test_pattern_periodicity(self, plan):
        period = math.prod(n + 1 for n in plan.counts)
        for m in range(1, period + 1):
            assert plan.level_at_position(m) == plan.level_at_position(m + period)

    @given(plans())
    def test_top_level_exactly_once_per_period(self, plan):
        period = math.prod(n + 1 for n in plan.counts)
        tops = [
            m
            for m in range(1, period + 1)
            if plan.level_at_position(m) == plan.top_level
        ]
        assert tops == [period]

    @given(plans())
    def test_checkpoints_per_pattern_consistency(self, plan):
        # Counting each used level's occurrences over one period must match
        # checkpoints_per_pattern (with counts > 0 levels are distinct).
        period = math.prod(n + 1 for n in plan.counts)
        seq = [plan.level_at_position(m) for m in range(1, period + 1)]
        for k, lv in enumerate(plan.levels):
            assert seq.count(lv) == plan.checkpoints_per_pattern(k)

    @given(plans())
    def test_iter_levels_matches_level_at_position(self, plan):
        n = 10
        assert list(plan.iter_levels(n)) == [
            plan.level_at_position(m) for m in range(1, n + 1)
        ]


class TestRecovery:
    def test_recovery_level_full_plan(self):
        plan = CheckpointPlan(levels=(1, 2, 3), tau0=1.0, counts=(1, 1))
        assert plan.recovery_level(1) == 1
        assert plan.recovery_level(2) == 2
        assert plan.recovery_level(3) == 3
        assert plan.recovery_level(4) is None

    def test_recovery_level_subset(self):
        plan = CheckpointPlan(levels=(3, 4), tau0=1.0, counts=(2,))
        assert plan.recovery_level(1) == 3
        assert plan.recovery_level(3) == 3
        assert plan.recovery_level(4) == 4
        assert plan.recovery_level(5) is None

    @given(plans(), st.integers(min_value=1, max_value=8))
    def test_recovery_is_lowest_sufficient(self, plan, sev):
        lv = plan.recovery_level(sev)
        if lv is None:
            assert all(x < sev for x in plan.levels)
        else:
            assert lv >= sev
            assert all(x < sev for x in plan.levels if x < lv)


class TestMisc:
    def test_scaled_preserves_pattern(self):
        plan = CheckpointPlan(levels=(1, 3), tau0=2.0, counts=(4,))
        other = plan.scaled(5.0)
        assert other.tau0 == 5.0
        assert other.levels == plan.levels
        assert other.counts == plan.counts

    def test_describe_mentions_levels_and_tau(self):
        plan = CheckpointPlan(levels=(1, 2), tau0=2.5, counts=(3,))
        text = plan.describe()
        assert "L1 x3" in text and "L2" in text and "2.5" in text
