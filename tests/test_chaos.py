"""Fault-injection tests: real pools, real kills, real resumption.

Everything here is marked ``chaos`` (CI runs ``pytest -m chaos`` as a
dedicated fault-injection step).  The in-process tests drive the actual
``ProcessPoolExecutor`` path with the :mod:`repro.exec.chaos` harness —
worker processes inherit ``REPRO_CHAOS`` via fork — and the subprocess
tests deliver SIGKILL/SIGINT to a real ``python -m repro`` driver and
assert the resumed run reproduces an uninterrupted one byte for byte.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exec import (
    RetryPolicy,
    ScenarioTask,
    StudyExecutionError,
    run_scenarios,
    set_active_cache,
)
from repro.exec import chaos
from repro.exec.chaos import ChaosError
from repro.scenarios import ScenarioSpec, StudySpec, execute_study
from repro.systems import TEST_SYSTEMS

pytestmark = pytest.mark.chaos

_SRC = str(Path(__file__).resolve().parent.parent / "src")
_FAST = RetryPolicy(base_delay=0.0)


@pytest.fixture(autouse=True)
def _no_active_cache():
    previous = set_active_cache(None)
    yield
    set_active_cache(previous)


@pytest.fixture
def arm(monkeypatch, tmp_path):
    """Arm the chaos harness for this (and forked worker) process(es)."""

    def _arm(spec: str) -> Path:
        marker_dir = tmp_path / "chaos-markers"
        monkeypatch.setenv(chaos.ENV_CHAOS, spec)
        monkeypatch.setenv(chaos.ENV_CHAOS_DIR, str(marker_dir))
        return marker_dir

    return _arm


def _identity(value):
    return value


class TestDirectiveParsing:
    def test_unknown_directive(self):
        with pytest.raises(ValueError, match="unknown chaos directive"):
            chaos._parse("explode:3", "/tmp/x")

    def test_missing_arg(self):
        with pytest.raises(ValueError, match="missing its ':ARG'"):
            chaos._parse("latency-ms", None)

    def test_missing_dir(self):
        with pytest.raises(ValueError, match="REPRO_CHAOS_DIR"):
            chaos._parse("kill-task:0", None)

    def test_repeats_and_latency(self):
        config = chaos._parse("kill-task:2x3,raise-task:1,latency-ms:250", "/d")
        assert config.kill_task == {2: 3}
        assert config.raise_task == {1: 1}
        assert config.latency == 0.25

    def test_inactive_without_env(self, monkeypatch):
        monkeypatch.delenv(chaos.ENV_CHAOS, raising=False)
        assert chaos.chaos_config() is None


class TestInjectedExceptions:
    def test_serial_retry_recovers(self, arm):
        arm("raise-task:1x2")
        events: list = []
        tasks = [ScenarioTask(_identity, args=(i,), label=f"t{i}") for i in range(3)]
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        assert run_scenarios(tasks, retry=policy, events=events) == [0, 1, 2]
        assert [e["event"] for e in events] == ["task_retry", "task_retry"]
        assert all(e["task"] == "t1" for e in events)

    def test_pooled_retry_recovers(self, arm, capsys):
        arm("raise-task:0x1")
        events: list = []
        tasks = [ScenarioTask(_identity, args=(i,)) for i in range(4)]
        assert run_scenarios(tasks, workers=2, retry=_FAST, events=events) == [
            0, 1, 2, 3,
        ]
        assert [e["event"] for e in events] == ["task_retry"]
        capsys.readouterr()

    def test_exhausted_budget_is_structured(self, arm, capsys):
        arm("raise-task:0x9")
        tasks = [
            ScenarioTask(_identity, args=(0,), label="victim"),
            ScenarioTask(_identity, args=(1,), label="ok"),
        ]
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(StudyExecutionError, match="victim") as info:
            run_scenarios(tasks, retry=policy)
        assert info.value.label == "victim"
        assert isinstance(info.value.__cause__, ChaosError)
        capsys.readouterr()


class TestWorkerKills:
    def test_worker_kill_triggers_pool_rebuild(self, arm, capsys):
        arm("kill-worker:0")
        events: list = []
        tasks = [ScenarioTask(_identity, args=(i,)) for i in range(6)]
        assert run_scenarios(tasks, workers=2, retry=_FAST, events=events) == list(
            range(6)
        )
        kinds = [e["event"] for e in events]
        assert "pool_rebuild" in kinds
        assert "serial_fallback" not in kinds
        assert "rebuilding" in capsys.readouterr().err

    def test_repeated_kills_degrade_to_serial(self, arm, capsys):
        # chunk 0 is murdered every time a pool tries it (budget 5); with
        # one rebuild allowed the scheduler must finish serially — where
        # kills are suppressed (never shoot the driver).
        arm("kill-task:0x5")
        events: list = []
        policy = RetryPolicy(base_delay=0.0, max_pool_rebuilds=1)
        tasks = [ScenarioTask(_identity, args=(i,)) for i in range(4)]
        assert run_scenarios(tasks, workers=2, retry=policy, events=events) == [
            0, 1, 2, 3,
        ]
        kinds = [e["event"] for e in events]
        assert kinds.count("pool_rebuild") == 1
        assert kinds.count("serial_fallback") == 1
        err = capsys.readouterr().err
        assert "giving up on multiprocessing" in err

    def test_study_survives_worker_kill_and_records_events(self, arm, capsys):
        arm("kill-worker:0")
        study = StudySpec(
            study_id="chaos-mini",
            seed=5,
            scenarios=tuple(
                ScenarioSpec(system=TEST_SYSTEMS[s], technique=t, trials=2)
                for s in ("M", "D1")
                for t in ("dauwe", "daly")
            ),
        )
        baseline = execute_study(study)  # no chaos in serial driver path
        capsys.readouterr()
        run = execute_study(study, workers=2, retry=_FAST)
        assert run.outcomes == baseline.outcomes
        kinds = [e["event"] for e in run.record.resilience["events"]]
        assert "pool_rebuild" in kinds
        capsys.readouterr()


class TestFailedStudyJournalsCompletedWork:
    def test_failure_then_resume_completes(self, arm, tmp_path, capsys):
        study = StudySpec(
            study_id="chaos-j",
            seed=1,
            scenarios=tuple(
                ScenarioSpec(system=TEST_SYSTEMS["M"], technique=t, trials=2)
                for t in ("dauwe", "daly")
            ),
        )
        baseline = execute_study(study)
        journal = tmp_path / "j.jsonl"

        arm("raise-task:1x9")  # scenario 1 never succeeds this run
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(StudyExecutionError) as info:
            execute_study(study, journal=journal, retry=policy)
        record = info.value.record
        assert record is not None
        assert record.resilience["interrupted"] is True
        assert record.resilience["executed"] == 1
        assert record.resilience["pending"] == 1

        # chaos off: the resumed run reuses scenario 0 and finishes 1
        os.environ.pop(chaos.ENV_CHAOS)
        resumed = execute_study(study, journal=journal, retry=policy)
        assert resumed.outcomes == baseline.outcomes
        assert resumed.record.resilience["resumed"] == 1
        assert resumed.record.resilience["executed"] == 1
        capsys.readouterr()


def _strip_timestamp(report: str) -> str:
    return "\n".join(
        line for line in report.splitlines() if not line.startswith("*Generated ")
    )


def _cli_env(**extra: str) -> dict:
    env = {**os.environ, "PYTHONPATH": _SRC}
    env.pop(chaos.ENV_CHAOS, None)
    env.pop(chaos.ENV_CHAOS_DIR, None)
    env.update(extra)
    return env


def _cli_cmd(directory: Path) -> list[str]:
    return [
        sys.executable, "-m", "repro", "figure2",
        "--trials", "2", "--seed", "1", "--techniques", "dauwe,daly",
        "--no-cache", "--report", str(directory / "rep.md"),
    ]


def _wait_for_journal(proc, journal: Path, lines: int, timeout: float = 90.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal.exists() and journal.read_text().count('"kind":"scenario"') >= lines:
            return
        if proc.poll() is not None:
            pytest.fail(f"driver exited early with {proc.returncode}")
        time.sleep(0.05)
    pytest.fail(f"journal never reached {lines} scenario entries")


def _verified_scenario_lines(journal: Path) -> int:
    """Count checksum-verified scenario entries (a torn tail line doesn't)."""
    from repro.exec.resilience import RunJournal

    return sum(
        1
        for line in journal.read_text().splitlines()
        if (record := RunJournal._verify(line)) and record.get("kind") == "scenario"
    )


@pytest.fixture(scope="module")
def baseline_report(tmp_path_factory) -> str:
    """One uninterrupted reference run shared by the kill/resume tests."""
    base_dir = tmp_path_factory.mktemp("baseline")
    subprocess.run(
        _cli_cmd(base_dir), env=_cli_env(), check=True, capture_output=True
    )
    return _strip_timestamp((base_dir / "rep.md").read_text())


class TestDriverKillAndResume:
    """ISSUE acceptance: SIGKILL the driver mid-run, resume, identical rows."""

    def test_sigkill_then_resume_reproduces_report(self, tmp_path, baseline_report):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        journal = run_dir / "rep.journal.jsonl"

        # latency-ms slows each scenario so the kill lands mid-study
        proc = subprocess.Popen(
            _cli_cmd(run_dir),
            env=_cli_env(REPRO_CHAOS="latency-ms:300"),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            _wait_for_journal(proc, journal, lines=2)
            proc.kill()  # SIGKILL: no handlers, no cleanup
        finally:
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
        assert not (run_dir / "rep.md").exists()  # died before any report

        survivors = _verified_scenario_lines(journal)
        assert survivors >= 2  # fsync'd lines outlive the process

        # Re-running the same command auto-resumes from the journal.
        second = subprocess.run(
            _cli_cmd(run_dir), env=_cli_env(), capture_output=True, text=True
        )
        assert second.returncode == 0
        assert f"resumed {survivors} scenario(s)" in second.stderr

        assert _strip_timestamp((run_dir / "rep.md").read_text()) == baseline_report

        manifest = json.loads((run_dir / "rep.manifest.json").read_text())
        assert manifest["status"] == "complete"
        (record,) = manifest["studies"]
        assert record["resilience"]["resumed"] == survivors
        assert record["resilience"]["executed"] == 22 - survivors


class TestExecutionFailureExitCode:
    def test_exhausted_retries_exit_3_with_aborted_manifest(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        marker_dir = tmp_path / "markers"
        proc = subprocess.run(
            _cli_cmd(run_dir) + ["--max-retries", "0"],
            env=_cli_env(
                REPRO_CHAOS="raise-task:0x99", REPRO_CHAOS_DIR=str(marker_dir)
            ),
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 3
        assert "failed after 1 attempt(s)" in proc.stderr
        manifest = json.loads((run_dir / "rep.manifest.json").read_text())
        assert manifest["status"] == "aborted"
        assert "StudyExecutionError" in manifest["error"]


class TestSigintGracefulAbort:
    def test_sigint_flushes_artifacts_and_resumes(self, tmp_path, baseline_report):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        journal = run_dir / "rep.journal.jsonl"

        proc = subprocess.Popen(
            _cli_cmd(run_dir),
            env=_cli_env(REPRO_CHAOS="latency-ms:300"),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        _wait_for_journal(proc, journal, lines=1)
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 130
        assert "interrupted" in stderr
        assert "re-run the same command to resume" in stderr

        # the graceful path wrote an aborted manifest atomically
        manifest = json.loads((run_dir / "rep.manifest.json").read_text())
        assert manifest["status"] == "aborted"
        assert "interrupted" in manifest["error"]

        second = subprocess.run(
            _cli_cmd(run_dir), env=_cli_env(), capture_output=True, text=True
        )
        assert second.returncode == 0
        assert "resumed" in second.stderr
        assert _strip_timestamp((run_dir / "rep.md").read_text()) == baseline_report
        manifest = json.loads((run_dir / "rep.manifest.json").read_text())
        assert manifest["status"] == "complete"


class TestKillDuringPackedExecution:
    """SIGINT inside the fused ``simulate_packed`` call: the whole batch
    must stay pending (nothing half-journaled) and resume must re-run it
    packed, reproducing an uninterrupted report byte for byte."""

    # Big enough that the single packed call dominates the run (~7s here)
    # and a kill 1s after the journal header lands squarely inside it.
    _SPEC = {
        "study": "packed-kill",
        "seed": 1,
        "trials": 8000,
        "systems": ["M", "B"],
        "techniques": ["dauwe", "daly"],
    }

    def _cmd(self, directory: Path) -> list[str]:
        return [
            sys.executable, "-m", "repro", "custom",
            "--study", str(directory / "study.json"),
            "--no-cache", "--report", str(directory / "rep.md"),
        ]

    def _prepare(self, directory: Path) -> None:
        directory.mkdir()
        (directory / "study.json").write_text(json.dumps(self._SPEC))

    def test_sigint_mid_packed_leaves_batch_pending_then_resumes(
        self, tmp_path
    ):
        base_dir = tmp_path / "base"
        self._prepare(base_dir)
        subprocess.run(
            self._cmd(base_dir), env=_cli_env(), check=True, capture_output=True
        )
        baseline = _strip_timestamp((base_dir / "rep.md").read_text())
        base_manifest = json.loads((base_dir / "rep.manifest.json").read_text())
        assert base_manifest["studies"][0]["resilience"]["events"] == [
            {"type": "packed_simulate", "scenarios": 4}
        ]

        run_dir = tmp_path / "run"
        self._prepare(run_dir)
        journal = run_dir / "rep.journal.jsonl"
        proc = subprocess.Popen(
            self._cmd(run_dir),
            env=_cli_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        # Wait for the journal *header* (written before the packed call
        # starts), then land the SIGINT inside the fused call.
        deadline = time.monotonic() + 60.0
        while not journal.exists():
            if proc.poll() is not None:
                pytest.fail(f"driver exited early with {proc.returncode}")
            if time.monotonic() > deadline:
                pytest.fail("journal header never appeared")
            time.sleep(0.05)
        time.sleep(1.0)
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 130
        assert "interrupted" in stderr

        # Atomicity: the packed batch journals only on completion, so the
        # kill leaves zero scenario entries — all four stay pending.
        assert _verified_scenario_lines(journal) == 0
        manifest = json.loads((run_dir / "rep.manifest.json").read_text())
        assert manifest["status"] == "aborted"
        (record,) = manifest["studies"]
        assert record["resilience"]["executed"] == 0
        assert record["resilience"]["pending"] == 4

        second = subprocess.run(
            self._cmd(run_dir), env=_cli_env(), capture_output=True, text=True
        )
        assert second.returncode == 0
        assert _strip_timestamp((run_dir / "rep.md").read_text()) == baseline
        manifest = json.loads((run_dir / "rep.manifest.json").read_text())
        assert manifest["status"] == "complete"
        (record,) = manifest["studies"]
        assert record["resilience"]["resumed"] == 0
        assert record["resilience"]["executed"] == 4
        # the resumed run took the packed fast path again
        assert {"type": "packed_simulate", "scenarios": 4} in (
            record["resilience"]["events"]
        )


class TestSigintDuringRegimeAdaptive:
    """SIGINT a driver running adaptive regime scenarios — these are
    never packed (the adaptive walker is scalar control flow), so the
    kill exercises the serial per-scenario journal path with a regime
    schedule active; the resumed report must be byte-identical to an
    uninterrupted run."""

    _SPEC = {
        "study": "regime-sigint",
        "seed": 5,
        "trials": 10,
        "systems": ["M", "B", "D1"],
        "techniques": ["dauwe"],
        "regime": {
            "segments": [
                {"duration": 2000.0},
                {"mtbf_scale": 0.25},
            ]
        },
        "adaptive": {},
    }

    def _cmd(self, directory: Path) -> list[str]:
        return [
            sys.executable, "-m", "repro", "custom",
            "--study", str(directory / "study.json"),
            "--no-cache", "--report", str(directory / "rep.md"),
        ]

    def _prepare(self, directory: Path) -> None:
        directory.mkdir()
        (directory / "study.json").write_text(json.dumps(self._SPEC))

    def test_sigint_then_resume_reproduces_regime_report(self, tmp_path):
        base_dir = tmp_path / "base"
        self._prepare(base_dir)
        subprocess.run(
            self._cmd(base_dir), env=_cli_env(), check=True, capture_output=True
        )
        baseline = _strip_timestamp((base_dir / "rep.md").read_text())
        base_manifest = json.loads((base_dir / "rep.manifest.json").read_text())
        (base_record,) = base_manifest["studies"]
        # adaptive scenarios bypass the packed fast path
        assert not any(
            event["type"] == "packed_simulate"
            for event in base_record["resilience"]["events"]
        )
        assert base_record["adaptive"]["scenarios"] == 3

        run_dir = tmp_path / "run"
        self._prepare(run_dir)
        journal = run_dir / "rep.journal.jsonl"
        proc = subprocess.Popen(
            self._cmd(run_dir),
            env=_cli_env(REPRO_CHAOS="latency-ms:300"),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        _wait_for_journal(proc, journal, lines=1)
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 130
        assert "interrupted" in stderr

        survivors = _verified_scenario_lines(journal)
        assert survivors >= 1
        manifest = json.loads((run_dir / "rep.manifest.json").read_text())
        assert manifest["status"] == "aborted"

        second = subprocess.run(
            self._cmd(run_dir), env=_cli_env(), capture_output=True, text=True
        )
        assert second.returncode == 0
        assert f"resumed {survivors} scenario(s)" in second.stderr
        assert _strip_timestamp((run_dir / "rep.md").read_text()) == baseline
        manifest = json.loads((run_dir / "rep.manifest.json").read_text())
        assert manifest["status"] == "complete"
        (record,) = manifest["studies"]
        assert record["resilience"]["resumed"] == survivors
        assert record["adaptive"] == base_record["adaptive"]
