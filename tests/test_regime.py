"""Non-stationary regimes: schedules, streams, planning, adaptation.

The regime layer's contracts, end to end:

* :class:`RegimeSchedule` is strict JSON (unknown keys raise, defaults
  are omitted) and round-trips losslessly; a scenario *without* a
  schedule serializes byte-identically to the pre-regime format, so
  existing study hashes never move;
* the scalar and batched engines are **bitwise identical** on
  piecewise-exponential regime streams, and ``engine="auto"``
  dispatches them to the batch engine like any stationary kind;
* :func:`plan_regimes` prices every segment plus the boundary
  carryover, degrading per-segment (never whole-schedule) on hopeless
  regimes;
* the CUSUM detector alarms on drift (both directions) and stays quiet
  on stationary streams; the static-policy adaptive walker reproduces
  the plain engine bitwise; the adaptive policy beats static on the
  curated drift regimes the validator asserts on.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core import DauweModel, plan_regimes
from repro.failures.registry import RegimeSourceFactory
from repro.scenarios import ScenarioSpec, StudySpec, execute_study
from repro.simulator import (
    AdaptiveSpec,
    compare_adaptive,
    simulate_adaptive_trial,
    simulate_many,
    simulate_trial,
)
from repro.simulator.adaptive import _Cusum
from repro.systems import get_system
from repro.systems.regime import RegimeSchedule, RegimeSegment
from repro.systems.stress import drift_regimes

DECAY = RegimeSchedule(
    (RegimeSegment(duration=800.0), RegimeSegment(mtbf_scale=0.25))
)


def plan_for(name: str):
    return DauweModel(get_system(name)).optimize().plan


class TestScheduleSpec:
    def test_round_trip_omits_defaults(self):
        data = DECAY.to_dict()
        assert data == {
            "segments": [{"duration": 800.0}, {"mtbf_scale": 0.25}]
        }
        assert RegimeSchedule.from_dict(data) == DECAY
        assert RegimeSchedule.from_json(DECAY.to_json()) == DECAY

    def test_unknown_keys_raise(self):
        with pytest.raises(ValueError, match="unknown regime segment field"):
            RegimeSegment.from_dict({"duration": 5.0, "mtbf": 2.0})
        with pytest.raises(ValueError, match="unknown regime schedule field"):
            RegimeSchedule.from_dict({"segments": [{}], "loop": True})

    def test_scale_validation(self):
        for key in (
            "mtbf_scale", "checkpoint_scale", "restart_scale", "nodes_scale"
        ):
            with pytest.raises(ValueError, match="positive finite"):
                RegimeSegment(**{key: 0.0})
        with pytest.raises(ValueError, match="positive and finite"):
            RegimeSegment(duration=-1.0)

    def test_only_last_segment_open_ended(self):
        with pytest.raises(ValueError, match="not the last segment"):
            RegimeSchedule((RegimeSegment(), RegimeSegment()))
        with pytest.raises(ValueError, match="must be open-ended"):
            RegimeSchedule((RegimeSegment(duration=10.0),))
        with pytest.raises(ValueError, match="at least one segment"):
            RegimeSchedule(())

    def test_boundaries_and_lookup(self):
        sched = RegimeSchedule(
            (
                RegimeSegment(duration=100.0),
                RegimeSegment(duration=50.0, mtbf_scale=0.5),
                RegimeSegment(nodes_scale=2.0),
            )
        )
        assert sched.boundaries == (0.0, 100.0, 150.0)
        assert [sched.segment_at(t) for t in (0.0, 99.9, 100.0, 149.0, 1e9)] \
            == [0, 0, 1, 1, 2]
        # rate scale: node growth speeds failures, MTBF slows them
        assert sched.effective_rates(0.01) == pytest.approx(
            (0.01, 0.02, 0.02)
        )

    def test_scaled_system(self):
        system = get_system("B")
        sched = RegimeSchedule(
            (
                RegimeSegment(duration=10.0),
                RegimeSegment(
                    mtbf_scale=0.5, checkpoint_scale=2.0,
                    restart_scale=3.0, nodes_scale=4.0,
                ),
            )
        )
        assert sched.scaled_system(system, 0) is system  # neutral: no copy
        hot = sched.scaled_system(system, 1)
        assert hot.mtbf == pytest.approx(system.mtbf * 0.5 / 4.0)
        assert hot.checkpoint_times == tuple(
            2.0 * c for c in system.checkpoint_times
        )
        # restart defaulted on B: materialized from checkpoint costs
        # before its own scale, so the two knobs stay independent
        assert hot.restart_times == tuple(
            3.0 * c for c in system.checkpoint_times
        )

    def test_resolve(self):
        assert RegimeSchedule.resolve(None) is None
        assert RegimeSchedule.resolve(DECAY) is DECAY
        assert RegimeSchedule.resolve(DECAY.to_dict()) == DECAY

    def test_summary_mentions_every_segment(self):
        text = DECAY.summary()
        assert "inf" in text and "800" in text


class TestScenarioSpecIntegration:
    def test_no_regime_serializes_as_before(self):
        # Transparency: the pre-regime JSON form is untouched, so every
        # existing study hash, journal, and manifest stays byte-valid.
        spec = ScenarioSpec(system=get_system("B"), trials=10)
        data = spec.to_dict()
        assert "regime" not in data and "adaptive" not in data

    def test_regime_round_trips_through_study_json(self):
        study = StudySpec(
            study_id="drift",
            scenarios=(
                ScenarioSpec(
                    system=get_system("B"), trials=10,
                    regime=DECAY.to_dict(), adaptive={"window": 4},
                ),
            ),
        )
        again = StudySpec.from_json(study.to_json())
        assert again == study
        scenario = again.scenarios[0]
        assert scenario.regime == DECAY
        assert scenario.adaptive == AdaptiveSpec(window=4)

    def test_regime_requires_default_failure_process(self):
        from repro.failures import FailureSpec

        with pytest.raises(ValueError, match="default exponential"):
            ScenarioSpec(
                system=get_system("B"), trials=10, regime=DECAY,
                failure=FailureSpec("weibull", {"shape": 0.7}),
            )

    def test_regime_rejects_interval_optimizer(self):
        with pytest.raises(ValueError, match="interval optimizer"):
            ScenarioSpec(
                system=get_system("B"), trials=10, regime=DECAY,
                optimizer="interval",
            )

    def test_adaptive_requires_regime(self):
        with pytest.raises(ValueError, match="requires a 'regime'"):
            ScenarioSpec(system=get_system("B"), trials=10, adaptive=True)

    def test_adaptive_rejects_silent_errors(self):
        with pytest.raises(ValueError, match="silent errors"):
            ScenarioSpec(
                system=get_system("B"), trials=10, regime=DECAY,
                adaptive=True, silent_errors={"mtbf": 50000.0},
            )


class TestEngineParity:
    @pytest.mark.parametrize("name", ["B", "D1"])
    def test_scalar_batch_bitwise_on_regime_streams(self, name):
        system = get_system(name)
        plan = plan_for(name)
        factory = RegimeSourceFactory.for_system(system, DECAY)
        kwargs = dict(
            trials=24, seed=11, source_factory=factory,
            max_time=40.0 * system.baseline_time, return_trials=True,
        )
        _, scalar = simulate_many(system, plan, engine="scalar", **kwargs)
        _, batch = simulate_many(system, plan, engine="batch", **kwargs)
        assert scalar == batch

    def test_auto_dispatches_regime_factories_to_batch(self):
        from repro.simulator.run import _resolve_engine

        factory = RegimeSourceFactory.for_system(get_system("B"), DECAY)
        assert _resolve_engine("auto", "retry", factory, 10**6) is True


class TestPlanRegimes:
    def test_trivial_schedule_matches_stationary_optimum(self):
        system = get_system("B")
        sched = RegimeSchedule((RegimeSegment(),))
        result = plan_regimes(system, sched)
        opt = DauweModel(system).optimize()
        assert result.segments[0].plan == opt.plan
        assert result.predicted_makespan == pytest.approx(opt.predicted_time)
        assert result.carryover == ()

    def test_decay_prices_both_segments_and_the_boundary(self):
        system = get_system("B")
        result = plan_regimes(system, DECAY)
        assert [s.index for s in result.segments] == [0, 1]
        assert result.segments[1].rate == pytest.approx(
            4.0 * result.segments[0].rate
        )
        # the hotter regime buys efficiency with denser checkpoints
        assert (
            result.segments[1].predicted_efficiency
            < result.segments[0].predicted_efficiency
        )
        assert math.isfinite(result.predicted_makespan)
        assert result.predicted_makespan > system.baseline_time
        # the walk crossed the one boundary before completing
        assert len(result.carryover) == 1
        assert result.carryover[0] >= 0.0
        data = json.loads(json.dumps(result.to_dict()))
        assert data["predicted_makespan"] == result.predicted_makespan


class TestCusum:
    def test_detects_rate_increase(self):
        lam0 = 0.01
        det = _Cusum(AdaptiveSpec(), lam0)
        t, events = 0.0, 0
        alarmed = False
        while events < 100 and not alarmed:
            t += 10.0  # gaps of 10 min: a 10x hotter machine
            alarmed = det.observe(t)
            events += 1
        assert alarmed and events < 20
        assert det.estimate(t) > lam0

    def test_calming_alarm_without_any_failure(self):
        # A machine that stops failing altogether must still produce
        # calming evidence via the censored open gap.
        det = _Cusum(AdaptiveSpec(), lam0=0.1)
        t, alarmed = 0.0, False
        while t < 10_000.0 and not alarmed:
            t += 10.0
            alarmed = det.advance(t)
        assert alarmed
        assert det.estimate(t) < 0.1

    def test_quiet_on_stationary_stream(self):
        lam0 = 0.01
        rng = np.random.default_rng(5)
        det = _Cusum(AdaptiveSpec(), lam0)
        t = 0.0
        for gap in rng.exponential(1.0 / lam0, size=200):
            t += gap
            assert not det.observe(t)


class TestAdaptiveWalker:
    def test_static_policy_is_bitwise_the_engine(self):
        system = get_system("B")
        plan = plan_for("B")
        factory = RegimeSourceFactory.for_system(system, DECAY)
        cap = 40.0 * system.baseline_time
        for child in np.random.SeedSequence(21).spawn(8):
            engine_result = simulate_trial(
                system, plan,
                source=factory(np.random.default_rng(child)),
                max_time=cap,
            )
            walker_result = simulate_adaptive_trial(
                system, plan,
                factory(np.random.default_rng(child)),
                DECAY, policy="static", max_time=cap,
            )
            assert walker_result == engine_result

    def test_compare_adaptive_on_curated_decay(self):
        system = get_system("B")
        regime_name, schedule = drift_regimes(system)[0]
        assert regime_name == "decay"
        comparison = compare_adaptive(system, schedule, trials=8, seed=3)
        assert len(comparison.per_trial_adaptive) == 8
        # curated to be worth adapting to: the validator's invariant
        assert comparison.adaptive_wins
        assert comparison.adaptive_mean <= comparison.static_mean
        assert comparison.mean_replans > 0
        assert comparison.mean_detection_latency is not None
        # shared streams: regret isolates policy from stream luck
        assert comparison.mean_regret == pytest.approx(
            comparison.adaptive_mean - comparison.oracle_mean
        )
        data = json.loads(json.dumps(comparison.to_dict()))
        assert data["trials"] == 8


class TestPipelineIntegration:
    def test_regime_study_packs_and_matches_scalar(self):
        from repro.simulator import set_default_engine

        def build():
            return StudySpec(
                study_id="drift-pipe",
                scenarios=tuple(
                    ScenarioSpec(
                        system=get_system(n), trials=8, regime=DECAY,
                        seed_policy="fixed",
                    )
                    for n in ("B", "D1")
                ),
                seed=5,
            )

        packed = execute_study(build())
        assert {"type": "packed_simulate", "scenarios": 2} in (
            packed.record.resilience["events"]
        )
        entry = packed.record.scenarios[0]
        assert entry["regime"] == DECAY.to_dict()

        previous = set_default_engine("scalar")
        try:
            scalar = execute_study(build())
        finally:
            set_default_engine(previous)
        assert packed.outcomes == scalar.outcomes

    def test_adaptive_scenario_reports_and_aggregates(self):
        study = StudySpec(
            study_id="drift-adaptive",
            scenarios=(
                ScenarioSpec(
                    system=get_system("B"), trials=6, regime=DECAY,
                    adaptive=True, seed_policy="fixed",
                ),
            ),
            seed=5,
        )
        run = execute_study(study)
        (outcome,) = run.outcomes
        block = outcome.adaptive
        for key in (
            "static_mean", "adaptive_mean", "oracle_mean",
            "mean_replans", "improvement",
        ):
            assert key in block
        aggregate = run.record.adaptive
        assert aggregate["scenarios"] == 1
        assert aggregate["wins"] in (0, 1)
        assert aggregate["mean_replans"] == pytest.approx(
            block["mean_replans"]
        )
        # the record (adaptive block included) survives its JSON form
        from repro.scenarios.manifest import StudyRunRecord

        again = StudyRunRecord.from_dict(
            json.loads(json.dumps(run.record.to_dict()))
        )
        assert again.adaptive == run.record.adaptive

    def test_aggregate_adaptive_empty(self):
        from repro.scenarios.pipeline import aggregate_adaptive

        assert aggregate_adaptive([]) == {}
