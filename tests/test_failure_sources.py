"""Tests for the failure processes driving the simulator."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.failures import (
    ExponentialFailureSource,
    TraceFailureSource,
    WeibullFailureSource,
    severity_sampler,
)
from repro.systems import SystemSpec


class TestSeveritySampler:
    def test_distribution_matches_probabilities(self):
        rng = np.random.default_rng(1)
        draw = severity_sampler((0.7, 0.2, 0.1), rng)
        n = 20000
        counts = np.bincount([draw() for _ in range(n)], minlength=4)[1:]
        assert counts[0] / n == pytest.approx(0.7, abs=0.02)
        assert counts[1] / n == pytest.approx(0.2, abs=0.02)
        assert counts[2] / n == pytest.approx(0.1, abs=0.02)

    def test_renormalizes_rounding(self):
        rng = np.random.default_rng(2)
        draw = severity_sampler((0.857, 0.143), rng)  # sums to 1.000
        assert all(draw() in (1, 2) for _ in range(100))

    def test_rejects_invalid(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            severity_sampler((), rng)
        with pytest.raises(ValueError):
            severity_sampler((0.5, -0.5), rng)

    def test_severities_in_range(self):
        rng = np.random.default_rng(3)
        draw = severity_sampler((0.5, 0.5), rng, batch=16)
        assert all(1 <= draw() <= 2 for _ in range(100))


class TestExponentialSource:
    def test_strictly_increasing_times(self):
        src = ExponentialFailureSource(0.1, (1.0,), np.random.default_rng(0))
        t = 0.0
        for _ in range(1000):
            nt, sev = src.next_after(t)
            assert nt > t
            assert sev == 1
            t = nt

    def test_mean_interarrival_matches_rate(self):
        src = ExponentialFailureSource(0.25, (1.0,), np.random.default_rng(4))
        gaps = []
        t = 0.0
        for _ in range(20000):
            nt, _ = src.next_after(t)
            gaps.append(nt - t)
            t = nt
        assert np.mean(gaps) == pytest.approx(4.0, rel=0.05)

    def test_for_system_matches_spec(self):
        spec = SystemSpec(
            name="s",
            mtbf=50.0,
            level_probabilities=(0.6, 0.4),
            checkpoint_times=(1.0, 2.0),
            baseline_time=100.0,
        )
        src = ExponentialFailureSource.for_system(spec, np.random.default_rng(5))
        assert src.rate == pytest.approx(spec.failure_rate)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            ExponentialFailureSource(0.0, (1.0,), np.random.default_rng(0))

    def test_reproducible_with_seed(self):
        a = ExponentialFailureSource(0.1, (0.5, 0.5), np.random.default_rng(7))
        b = ExponentialFailureSource(0.1, (0.5, 0.5), np.random.default_rng(7))
        t = 0.0
        for _ in range(50):
            fa = a.next_after(t)
            fb = b.next_after(t)
            assert fa == fb
            t = fa[0]


class TestTraceSource:
    def test_replays_in_order(self):
        src = TraceFailureSource([1.0, 2.5, 7.0], [1, 2, 1])
        assert src.next_after(0.0) == (1.0, 1)
        assert src.next_after(1.0) == (2.5, 2)
        assert src.next_after(2.5) == (7.0, 1)
        t, _ = src.next_after(7.0)
        assert math.isinf(t)

    def test_skips_past_entries(self):
        src = TraceFailureSource([1.0, 2.0, 3.0], [1, 1, 2])
        assert src.next_after(1.5) == (2.0, 1)

    def test_reset(self):
        src = TraceFailureSource([1.0], [1])
        src.next_after(0.0)
        src.reset()
        assert src.next_after(0.0) == (1.0, 1)

    def test_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            TraceFailureSource([1.0], [1, 2])
        with pytest.raises(ValueError, match="increasing"):
            TraceFailureSource([2.0, 1.0], [1, 1])
        with pytest.raises(ValueError, match="1-based"):
            TraceFailureSource([1.0], [0])

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=1e5),
            min_size=1,
            max_size=30,
            unique=True,
        )
    )
    def test_property_monotone_consumption(self, times):
        times = sorted(times)
        src = TraceFailureSource(times, [1] * len(times))
        t = 0.0
        seen = []
        while True:
            nt, _ = src.next_after(t)
            if math.isinf(nt):
                break
            seen.append(nt)
            t = nt
        assert seen == times


class TestWeibullSource:
    def test_shape_one_is_exponential_mean(self):
        src = WeibullFailureSource(1.0, 10.0, (1.0,), np.random.default_rng(8))
        assert src.mean_interarrival == pytest.approx(10.0)

    def test_empirical_mean(self):
        src = WeibullFailureSource(0.7, 5.0, (1.0,), np.random.default_rng(9))
        gaps = []
        t = 0.0
        for _ in range(20000):
            nt, _ = src.next_after(t)
            gaps.append(nt - t)
            t = nt
        assert np.mean(gaps) == pytest.approx(src.mean_interarrival, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            WeibullFailureSource(0.0, 1.0, (1.0,), np.random.default_rng(0))
        with pytest.raises(ValueError):
            WeibullFailureSource(1.0, -1.0, (1.0,), np.random.default_rng(0))
