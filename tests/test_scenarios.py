"""Tests for the declarative scenario layer (specs, manifests, pipeline)."""

from __future__ import annotations

import json
from math import gamma

import pytest

from repro.exec import OptimizationCache, set_active_cache
from repro.failures import FAILURE_KINDS, FailureSpec
from repro.failures.sources import WeibullFailureSource
from repro.scenarios import (
    RunManifest,
    ScenarioSpec,
    StudySpec,
    execute_study,
    generic_result,
    scenario_seed,
)
from repro.scenarios.manifest import StudyRunRecord
from repro.experiments.runner import pair_seed
from repro.systems import TEST_SYSTEMS, exascale_grid
from repro.systems.spec import SystemSpec


class TestFailureSpec:
    def test_default_is_exponential(self):
        spec = FailureSpec()
        assert spec.is_default
        assert spec.source_factory(TEST_SYSTEMS["M"]) is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown failure kind"):
            FailureSpec("lognormal")

    def test_round_trip(self):
        spec = FailureSpec("weibull", {"shape": 0.7})
        again = FailureSpec.from_dict(spec.to_dict())
        assert again == spec
        assert FailureSpec.from_json(spec.to_json()) == spec

    def test_weibull_factory_matches_hand_built_source(self):
        system = TEST_SYSTEMS["D2"]
        factory = FailureSpec("weibull", {"shape": 0.8}).source_factory(system)
        import numpy as np

        src = factory(np.random.default_rng(0))
        assert isinstance(src, WeibullFailureSource)
        ref = WeibullFailureSource(
            0.8,
            system.mtbf / gamma(1.0 + 1.0 / 0.8),
            system.severity_probabilities,
            np.random.default_rng(0),
        )
        assert src.shape == ref.shape and src.scale == ref.scale
        assert src.next_after(0.0) == ref.next_after(0.0)

    def test_registry_lists_builtin_kinds(self):
        assert {"exponential", "weibull", "trace"} <= set(FAILURE_KINDS)


class TestScenarioSpec:
    def test_defaults_and_label(self):
        s = ScenarioSpec(system=TEST_SYSTEMS["M"])
        assert s.technique == "dauwe"
        assert s.label == "M/dauwe"
        assert s.seed_policy == "pair"

    def test_rejects_unknown_technique(self):
        with pytest.raises(ValueError, match="unknown technique"):
            ScenarioSpec(system=TEST_SYSTEMS["M"], technique="chandy")

    def test_rejects_bad_seed_policy_and_trials(self):
        with pytest.raises(ValueError, match="seed_policy"):
            ScenarioSpec(system=TEST_SYSTEMS["M"], seed_policy="random")
        with pytest.raises(ValueError, match="trials"):
            ScenarioSpec(system=TEST_SYSTEMS["M"], trials=0)

    def test_interval_optimizer_forces_technique(self):
        s = ScenarioSpec(system=TEST_SYSTEMS["M"], optimizer="interval")
        assert s.technique == "interval"

    def test_round_trip(self):
        s = ScenarioSpec(
            system=TEST_SYSTEMS["D5"],
            technique="moody",
            simulate={"restart_semantics": "escalate"},
            failure=FailureSpec("weibull", {"shape": 0.6}),
            trials=7,
            seed_policy="fixed",
            tags={"variant": "x"},
        )
        again = ScenarioSpec.from_dict(json.loads(json.dumps(s.to_dict())))
        assert again == s

    def test_from_dict_rejects_typos(self):
        with pytest.raises(ValueError, match="unknown scenario field"):
            ScenarioSpec.from_dict({"system": "M", "techniqe": "dauwe"})

    def test_system_by_name_and_inline_dict(self):
        by_name = ScenarioSpec.from_dict({"system": "M", "trials": 5})
        inline = ScenarioSpec.from_dict(
            {"system": TEST_SYSTEMS["M"].to_dict(), "trials": 5}
        )
        assert by_name.system == inline.system == TEST_SYSTEMS["M"]


class TestStudySpec:
    def _study(self, **kwargs):
        scenarios = tuple(
            ScenarioSpec(system=TEST_SYSTEMS["M"], technique=t, trials=5)
            for t in ("dauwe", "daly")
        )
        return StudySpec(study_id="s", scenarios=scenarios, **kwargs)

    def test_requires_scenarios(self):
        with pytest.raises(ValueError, match="no scenarios"):
            StudySpec(study_id="s", scenarios=())

    def test_techniques_and_with_techniques(self):
        study = self._study()
        assert study.techniques == ("dauwe", "daly")
        assert study.with_techniques(["daly"]).techniques == ("daly",)
        with pytest.raises(ValueError, match="no scenarios for technique"):
            study.with_techniques(["young"])

    def test_with_trials_and_seed(self):
        study = self._study().with_trials(3).with_seed(9)
        assert {s.trials for s in study.scenarios} == {3}
        assert study.seed == 9

    def test_round_trip_preserves_hash(self):
        study = self._study(title="T", notes=("n1",), seed=4)
        again = StudySpec.from_json(study.to_json())
        assert again == study
        assert again.study_hash() == study.study_hash()

    def test_hash_changes_with_content(self):
        study = self._study()
        assert study.study_hash() != study.with_seed(1).study_hash()
        assert study.study_hash() != study.with_trials(6).study_hash()

    def test_shorthand_cross_product(self):
        study = StudySpec.from_dict(
            {
                "study": "mini",
                "systems": ["M", "D1"],
                "techniques": ["dauwe", "moody"],
                "trials": 8,
                "seed_policy": "fixed",
            }
        )
        assert len(study.scenarios) == 4
        assert study.techniques == ("dauwe", "moody")
        assert {s.trials for s in study.scenarios} == {8}
        assert {s.seed_policy for s in study.scenarios} == {"fixed"}
        # the resolved form hashes identically to its explicit equivalent
        assert study.study_hash() == StudySpec.from_json(study.to_json()).study_hash()

    def test_shorthand_requires_trials(self):
        with pytest.raises(ValueError, match="requires a study-level 'trials'"):
            StudySpec.from_dict({"study": "s", "systems": ["M"]})

    def test_rejects_both_forms(self):
        with pytest.raises(ValueError, match="not both"):
            StudySpec.from_dict(
                {"study": "s", "systems": ["M"], "trials": 2,
                 "scenarios": [{"system": "M", "trials": 2}]}
            )

    def test_from_file_wraps_errors(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            StudySpec.from_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            StudySpec.from_file(bad)


class TestSystemSpecRoundTrip:
    @pytest.mark.parametrize("name", sorted(TEST_SYSTEMS))
    def test_table1_systems(self, name):
        spec = TEST_SYSTEMS[name]
        assert SystemSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("short", [False, True])
    def test_exascale_grid_specs(self, short):
        for spec in exascale_grid(short_application=short):
            assert SystemSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_nonpositive_mtbf_and_baseline(self):
        base = TEST_SYSTEMS["M"].to_dict()
        for key in ("mtbf", "baseline_time"):
            bad = dict(base, **{key: 0.0})
            with pytest.raises(ValueError, match=f"{key} must be positive"):
                SystemSpec.from_dict(bad)

    def test_rejects_mismatched_level_lengths(self):
        base = TEST_SYSTEMS["D5"].to_dict()
        bad = dict(base, checkpoint_times=base["checkpoint_times"][:-1])
        with pytest.raises(ValueError, match="severity classes"):
            SystemSpec.from_dict(bad)
        bad = dict(base, restart_times=base["checkpoint_times"][:-1])
        with pytest.raises(ValueError, match="severity classes"):
            SystemSpec.from_dict(bad)

    def test_rejects_unknown_and_missing_fields(self):
        base = TEST_SYSTEMS["M"].to_dict()
        with pytest.raises(ValueError, match="unknown system spec field"):
            SystemSpec.from_dict(dict(base, mtbf_minutes=3.0))
        base.pop("mtbf")
        with pytest.raises(ValueError, match="missing required field"):
            SystemSpec.from_dict(base)

    def test_restart_times_default_survives_round_trip(self):
        spec = TEST_SYSTEMS["M"]
        assert spec.restart_times is None
        assert "restart_times" not in spec.to_dict()
        assert SystemSpec.from_json(spec.to_json()).restart_times is None


class TestPipeline:
    @pytest.fixture(autouse=True)
    def cache(self):
        previous = set_active_cache(OptimizationCache())
        yield
        set_active_cache(previous)

    def _study(self, seed=3):
        return StudySpec(
            study_id="mini",
            seed=seed,
            scenarios=(
                ScenarioSpec(system=TEST_SYSTEMS["M"], technique="dauwe", trials=4),
                ScenarioSpec(
                    system=TEST_SYSTEMS["M"], technique="daly", trials=4,
                    seed_policy="fixed", tags={"note": "shared stream"},
                ),
            ),
        )

    def test_scenario_seed_policies(self):
        study = self._study(seed=5)
        assert scenario_seed(study.scenarios[0], 5) == pair_seed(5, "M", "dauwe")
        assert scenario_seed(study.scenarios[1], 5) == 5

    def test_execute_study_outcomes_and_record(self):
        study = self._study()
        run = execute_study(study)
        assert [o.technique for o in run.outcomes] == ["dauwe", "daly"]
        record = run.record
        assert record.study == "mini"
        assert record.study_hash == study.study_hash()
        assert record.seed == 3
        assert [s["seed"] for s in record.scenarios] == [
            pair_seed(3, "M", "dauwe"), 3,
        ]
        assert [s["trials"] for s in record.scenarios] == [4, 4]
        assert set(record.stages) >= {"optimize", "simulate"}
        assert record.cache["misses"] == record.cache["stores"] == 2

    def test_generic_result_carries_tags_and_manifest(self):
        run = execute_study(self._study())
        result = generic_result(run)
        assert result.experiment_id == "mini"
        assert [c[0] for c in result.columns][:1] == ["note"]
        assert result.rows[1]["note"] == "shared stream"
        assert result.rows[0]["note"] is None
        assert result.manifest == run.record.to_dict()
        assert result.parameters["study_hash"] == run.record.study_hash

    def test_record_carries_numerics_block(self):
        # Dauwe's sweep probes tau0 grid points extreme enough to clamp
        # gamma even on Table I's M; the study record must aggregate those
        # events next to the resilience block and round-trip through JSON.
        run = execute_study(self._study())
        assert run.record.numerics, "dauwe sweep on M is expected to clamp"
        assert any(k.startswith("dauwe.") for k in run.record.numerics)
        assert all(
            isinstance(k, str) and isinstance(v, int) and v > 0
            for k, v in run.record.numerics.items()
        )
        restored = StudyRunRecord.from_dict(
            json.loads(json.dumps(run.record.to_dict()))
        )
        assert restored.numerics == run.record.numerics
        dauwe_outcome = next(o for o in run.outcomes if o.technique == "dauwe")
        assert dauwe_outcome.numerics  # per-outcome slice populated too

    def test_numerics_block_empty_for_quiet_sweep(self):
        # Daly's closed-form-seeded refinement on M never leaves the
        # comfortable regime, so the block is present but empty.
        study = StudySpec(
            study_id="quiet",
            seed=3,
            scenarios=(
                ScenarioSpec(system=TEST_SYSTEMS["M"], technique="daly", trials=2),
            ),
        )
        run = execute_study(study)
        assert "numerics" in run.record.to_dict()
        assert run.record.numerics == {}

    def test_manifest_aggregation_and_write(self, tmp_path):
        run = execute_study(self._study())
        manifest = RunManifest(workers=2, sim_workers=1)
        manifest.add(run.record)
        manifest.add(run.record.to_dict())
        manifest.add(None)
        path = manifest.write(tmp_path / "run.manifest.json")
        data = json.loads(path.read_text())
        assert data["manifest_version"] == 1
        assert data["workers"] == 2
        assert len(data["studies"]) == 2
        assert data["studies"][0] == run.record.to_dict()
        assert {"repro", "numpy", "python"} <= set(data["versions"])
