"""Chaos tests for the planning service: the failure matrix, for real.

Every test here is marked ``chaos`` (CI's fault-injection step).  The
in-process tests arm :mod:`repro.exec.chaos` service directives against
a real :class:`~repro.service.PlanningService` on a real socket and
assert the advertised failure behavior: deadlines fire instead of
clients hanging, dropped connections surface promptly, crashing plan
workers trip the circuit breaker and the service recovers, overload
sheds ``429`` instead of stalling sockets.  The subprocess tests SIGKILL
and SIGTERM a real ``python -m repro serve`` driver and assert journaled
studies survive: resume-by-re-POST reproduces an uninterrupted run's
outcomes exactly, and an overrun drain exits ``EXIT_DRAIN_ABANDONED``.
"""

from __future__ import annotations

import http.client
import json
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.exec import OptimizationCache, set_active_cache
from repro.exec import chaos
from repro.scenarios import StudySpec, execute_study
from repro.service import EXIT_DRAIN_ABANDONED, PlanningService, ServiceConfig

pytestmark = pytest.mark.chaos

_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def _fresh_cache():
    previous = set_active_cache(OptimizationCache())
    yield
    set_active_cache(previous)


@pytest.fixture
def arm(monkeypatch, tmp_path):
    """Arm the chaos harness for this (and forked worker) process(es)."""

    def _arm(spec: str) -> Path:
        marker_dir = tmp_path / "chaos-markers"
        monkeypatch.setenv(chaos.ENV_CHAOS, spec)
        monkeypatch.setenv(chaos.ENV_CHAOS_DIR, str(marker_dir))
        return marker_dir

    return _arm


def _run_service(client_fn, **config_kwargs):
    """Run ``client_fn(url)`` in a thread against an in-process service.

    Returns ``(client result, exit code)`` after a graceful drain.
    """
    out: dict = {}

    async def main():
        import asyncio

        svc = PlanningService(ServiceConfig(**config_kwargs))
        await svc.start()
        url = f"http://127.0.0.1:{svc.port}"
        errors: list[BaseException] = []

        def runner():
            try:
                out["value"] = client_fn(url)
            except BaseException as err:  # surfaced after drain
                errors.append(err)

        thread = threading.Thread(target=runner)
        thread.start()
        while thread.is_alive():
            await asyncio.sleep(0.02)
        thread.join()
        svc.request_shutdown()
        out["exit"] = await svc.run_until_shutdown()
        if errors:
            raise errors[0]

    import asyncio

    asyncio.run(main())
    return out.get("value"), out["exit"]


def _req(url, path, body=None, headers=None, timeout=60):
    """One request; returns ``(status, parsed body, headers)`` even for
    error responses (urllib raises on 4xx/5xx)."""
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(
        f"{url}{path}",
        data=data,
        method="POST" if data is not None else "GET",
        headers=headers or {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            headers = {k.lower(): v for k, v in resp.headers.items()}
            return resp.status, json.loads(resp.read()), headers
    except urllib.error.HTTPError as err:
        headers = {k.lower(): v for k, v in err.headers.items()}
        return err.code, json.loads(err.read()), headers


class TestSlowHandlerDeadline:
    def test_stalled_handler_504s_within_deadline(self, arm):
        """slow-handler stalls every handler 5s; a 300ms-deadline client
        must get its 504 long before the stall ends — never a hang."""
        arm("slow-handler:5000")

        def client(url):
            started = time.monotonic()
            status, body, _ = _req(
                url, "/plan",
                {"system": "M", "technique": "dauwe"},
                headers={"X-Deadline-Ms": "300"},
            )
            return status, body, time.monotonic() - started

        (status, body, elapsed), exit_code = _run_service(client)
        assert status == 504
        assert "deadline" in body["error"]
        assert elapsed < 4.0  # the deadline fired, not the stall
        assert exit_code == 0


class TestDropConnection:
    def test_client_errors_promptly_and_server_survives(self, arm):
        arm("drop-connection:0")

        def client(url):
            started = time.monotonic()
            with pytest.raises(
                (urllib.error.URLError, ConnectionError, http.client.HTTPException)
            ):
                urllib.request.urlopen(f"{url}/health", timeout=30)
            elapsed = time.monotonic() - started
            status, body, _ = _req(url, "/health")  # request 1: served
            return elapsed, status, body

        (elapsed, status, body), exit_code = _run_service(client)
        assert elapsed < 5.0  # a clean connection error, not a hang
        assert status == 200
        assert body["status"] == "ok"
        assert exit_code == 0


class TestCrashingPlanWorkers:
    def test_poisoned_plan_trips_breaker_then_recovers(self, arm):
        """Request 0's worker dies on every pool attempt: two deaths for
        one request -> 500, breaker (threshold 1) trips OPEN -> 503 with
        Retry-After, and after the backoff the probe succeeds."""
        arm("crash-plan:0x9")
        plan = {"system": "M", "technique": "dauwe"}

        def client(url):
            s0, b0, _ = _req(url, "/plan", plan)  # request index 0
            s1, b1, h1 = _req(url, "/plan", plan)
            _, health_open, _ = _req(url, "/health")
            time.sleep(0.6)  # past the 0.3s breaker backoff
            s2, b2, _ = _req(url, "/plan", plan)  # the half-open probe
            _, health_closed, _ = _req(url, "/health")
            return (s0, b0), (s1, b1, h1), health_open, (s2, b2), health_closed

        (
            (s0, b0), (s1, b1, h1), health_open, (s2, b2), health_closed
        ), exit_code = _run_service(
            client, breaker_threshold=1, breaker_backoff=0.3
        )
        assert s0 == 500
        assert "crashed its workers" in b0["error"]
        assert s1 == 503
        assert "circuit breaker open" in b1["error"]
        assert h1.get("retry-after") is not None
        assert health_open["breaker"]["state"] == "open"
        assert health_open["breaker"]["trips"] == 1
        # the probe carries a fresh request index: the poison is gone and
        # the very spec that crashed two workers now answers fine
        assert s2 == 200
        assert b2["cache"] == "miss"
        assert health_closed["breaker"]["state"] == "closed"
        assert health_closed["supervisor"]["rebuilds"] == 2
        assert health_closed["supervisor"]["serial_fallback"] is False
        assert exit_code == 0

    def test_repeated_crashes_degrade_to_serial_fallback(self, arm):
        """Three requests each cost one worker: the rebuild budget (2)
        runs out and the third computes in-process via the serial
        fallback — where crash-plan must not fire.  No client ever sees
        an error."""
        arm("crash-plan:0x1,crash-plan:1x1,crash-plan:2x1")

        def client(url):
            statuses = []
            for body in (
                {"system": "M", "technique": "dauwe"},
                {"system": "M", "technique": "daly"},
                {"system": "B", "technique": "dauwe"},
            ):
                status, payload, _ = _req(url, "/plan", body)
                statuses.append((status, payload.get("cache")))
            _, health, _ = _req(url, "/health")
            return statuses, health

        (statuses, health), exit_code = _run_service(client)
        assert statuses == [(200, "miss")] * 3
        assert health["supervisor"]["rebuilds"] == 3
        assert health["supervisor"]["serial_fallback"] is True
        assert health["breaker"]["state"] == "closed"
        assert exit_code == 0


class TestOverloadSheds429:
    def test_queue_full_sheds_immediately_with_retry_after(self):
        """queue_limit=1, workers=1: one slow plan holds the slot, one
        waits, the third is shed 429 *immediately* (no stalled socket).
        The queued requests 504 on their own deadlines — nobody hangs."""
        heavy = {"sweep_options": {"tau0_points": 20000}}

        def client(url):
            results: dict = {}

            def post(name, body):
                results[name] = _req(
                    url, "/plan", body, headers={"X-Deadline-Ms": "2500"}
                )

            a = threading.Thread(target=post, args=(
                "a", {"system": "M", "technique": "dauwe", **heavy}
            ))
            b = threading.Thread(target=post, args=(
                "b", {"system": "M", "technique": "daly", **heavy}
            ))
            a.start()
            time.sleep(0.8)  # a holds the slot (~2.5s of sweep left)
            b.start()
            time.sleep(0.5)  # b is queued; the queue (limit 1) is full
            started = time.monotonic()
            status, body, headers = _req(
                url, "/plan", {"system": "B", "technique": "dauwe"}
            )
            shed_elapsed = time.monotonic() - started
            a.join()
            b.join()
            _, health, _ = _req(url, "/health")
            return status, body, headers, shed_elapsed, results, health

        (
            status, body, headers, shed_elapsed, results, health
        ), exit_code = _run_service(client, queue_limit=1, workers=1)
        assert status == 429
        assert "admission queue full" in body["error"]
        assert headers.get("retry-after") == "1"
        assert shed_elapsed < 2.0  # shed at admission, not queued to death
        # the deliberately-slow requests died on their deadlines, not ours
        assert results["a"][0] == 504
        assert results["b"][0] == 504
        assert health["metrics"]["aggregated"]["shed_total"] >= 1
        assert health["metrics"]["aggregated"]["deadline_total"] >= 2
        assert exit_code == 0


# ----------------------------------------------------------------------
# Subprocess tests: a real `repro serve` driver, killed for real.


def _cli_env() -> dict:
    import os

    env = {**os.environ, "PYTHONPATH": _SRC}
    env.pop(chaos.ENV_CHAOS, None)
    env.pop(chaos.ENV_CHAOS_DIR, None)
    return env


def _start_serve(service_dir: Path, *extra: str):
    """Launch ``repro serve`` and return ``(proc, url)`` once it's bound."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--service-dir", str(service_dir), *extra,
        ],
        env=_cli_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline()  # "SERVE http://host:port"
    if not line.startswith("SERVE "):
        proc.kill()
        pytest.fail(f"serve never announced itself (got {line!r})")
    return proc, line.split(None, 1)[1].strip()


_STUDY_SPEC = {
    "study": "svc-chaos",
    "seed": 2,
    "trials": 4000,
    "systems": ["M", "B"],
    "techniques": ["dauwe", "daly"],
}


def _wait_for_scenarios(proc, journal: Path, lines: int, timeout=90.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if (
            journal.exists()
            and journal.read_text().count('"kind":"scenario"') >= lines
        ):
            return
        if proc.poll() is not None:
            pytest.fail(f"serve exited early with {proc.returncode}")
        time.sleep(0.05)
    pytest.fail(f"journal never reached {lines} scenario entries")


class TestServerKillAndResume:
    def test_sigkill_mid_study_then_restart_resumes_identically(self, tmp_path):
        """SIGKILL the server mid-study; a fresh server on the same
        service dir resumes the journal on re-POST and the outcomes match
        a direct uninterrupted run exactly (JSON float bits and all)."""
        service_dir = tmp_path / "svc"
        # --task-timeout keeps the study on the per-scenario path, so the
        # journal grows line by line and the kill lands mid-study.
        proc, url = _start_serve(service_dir, "--task-timeout", "120")
        try:
            status, submitted, _ = _req(url, "/study", _STUDY_SPEC)
            assert status == 202
            study_hash = submitted["study_hash"]
            journal = Path(submitted["journal"])
            _wait_for_scenarios(proc, journal, lines=1)
            proc.kill()
        finally:
            proc.kill()
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
        survivors = journal.read_text().count('"kind":"scenario"')
        assert survivors >= 1  # fsync'd lines outlive the process

        proc2, url2 = _start_serve(service_dir, "--task-timeout", "120")
        try:
            status, resubmitted, _ = _req(url2, "/study", _STUDY_SPEC)
            assert status in (200, 202)
            assert resubmitted["study_hash"] == study_hash
            deadline = time.monotonic() + 90.0
            while time.monotonic() < deadline:
                status, polled, _ = _req(url2, f"/study/{study_hash}")
                if polled["status"] != "running":
                    break
                time.sleep(0.2)
            assert polled["status"] == "done"
            assert polled["completed"] == polled["total"] == 4
            assert polled["resumed"] >= min(survivors, 4)
        finally:
            proc2.terminate()
            proc2.wait(timeout=30)

        # no lost journaled work: byte-identical to a direct run
        direct = execute_study(StudySpec.from_dict(_STUDY_SPEC))
        assert polled["outcomes"] == [o.to_dict() for o in direct.outcomes]


class TestDrainTimeoutExitCode:
    def test_sigterm_with_running_study_exits_75(self, tmp_path):
        """A drain that cannot finish its study abandons it (journaled)
        and exits EXIT_DRAIN_ABANDONED, not 0."""
        service_dir = tmp_path / "svc"
        spec = {**_STUDY_SPEC, "trials": 200000}  # far outlives the drain
        proc, url = _start_serve(service_dir, "--drain-timeout", "1")
        try:
            status, submitted, _ = _req(url, "/study", spec)
            assert status == 202
            # the journal header proves the run started and is resumable
            journal = Path(submitted["journal"])
            deadline = time.monotonic() + 60.0
            while not journal.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert journal.exists()
            proc.send_signal(signal.SIGTERM)
            _, stderr = proc.communicate(timeout=60)
        finally:
            proc.kill()
            proc.wait(timeout=30)
        assert proc.returncode == EXIT_DRAIN_ABANDONED
        assert "drain" in stderr
        assert "abandoned" in stderr
        assert "resume by re-POSTing" in stderr
