"""The benchmark trajectory harness: payload schema, CLI, equality gate."""

from __future__ import annotations

import json

import pytest

import repro.bench as bench_mod
from repro.bench import SCHEMA, format_bench, run_bench
from repro.cli import main
from repro.simulator import get_default_engine, set_default_engine

#: A tiny comparison grid so the suite stays fast; the real grid is
#: exercised by `python -m repro bench` itself (CI runs --quick).
_TINY_GRID = (("M", "M", 8, None),)


@pytest.fixture
def tiny_grid(monkeypatch):
    monkeypatch.setattr(bench_mod, "_GRID_QUICK", _TINY_GRID)
    monkeypatch.setattr(bench_mod, "_GRID_FULL", _TINY_GRID)


@pytest.fixture
def tiny_crossover(monkeypatch):
    monkeypatch.setattr(bench_mod, "_CROSSOVER_WIDTHS", (4, 8))
    monkeypatch.setattr(bench_mod, "_CROSSOVER_SYSTEMS", ("M",))


@pytest.fixture
def restore_engine():
    previous = get_default_engine()
    yield
    set_default_engine(previous)


class TestRunBench:
    def test_payload_schema(self, tiny_grid, tmp_path):
        out = tmp_path / "BENCH_simulator.json"
        payload = run_bench(quick=True, out=out)
        on_disk = json.loads(out.read_text())
        assert on_disk == payload
        assert payload["schema"] == SCHEMA
        assert payload["quick"] is True
        assert set(payload["package_versions"]) == {"repro", "numpy", "python"}
        names = [c["name"] for c in payload["cases"]]
        assert "dauwe_predict_time_batch" in names
        assert "simulate_trial_failure_storm" in names
        for case in payload["cases"]:
            assert case["seconds_best"] > 0.0
            assert case["seconds_best"] <= case["seconds_mean"]
        # v2 provenance and crossover blocks: the dirty flag reflects the
        # working tree, the crossover block carries the configured
        # threshold and no measurement unless --crossover asked for one.
        assert payload["git_dirty"] in (True, False, None)
        assert payload["auto_crossover"]["measured"] is None
        assert payload["auto_crossover"]["configured"] >= 1

    def test_crossover_sweep(self, tiny_grid, tiny_crossover):
        payload = run_bench(quick=True, crossover=True)
        measured = payload["auto_crossover"]["measured"]
        assert measured["widths"] == [4, 8]
        sweep = measured["systems"]["M"]["sweep"]
        assert [row["trials"] for row in sweep] == [4, 8]
        for row in sweep:
            assert row["scalar_seconds"] > 0.0
            assert row["batch_seconds"] > 0.0
            assert row["speedup"] == pytest.approx(
                row["scalar_seconds"] / row["batch_seconds"]
            )
        crossing = measured["systems"]["M"]["crossover"]
        assert crossing in (None, 4, 8)
        assert measured["recommended"] == crossing
        text = format_bench(payload)
        assert "auto crossover" in text
        assert "recommended engine='auto' threshold" in text

    def test_speedup_grid(self, tiny_grid):
        payload = run_bench(quick=True)
        (cell,) = payload["simulate_many"]
        assert cell["system"] == "M" and cell["trials"] == 8
        assert cell["equal"] is True
        assert cell["speedup"] == pytest.approx(
            cell["scalar"]["seconds_best"] / cell["batch"]["seconds_best"]
        )
        for rec in (cell["scalar"], cell["batch"]):
            assert rec["trials_per_sec"] == pytest.approx(8 / rec["seconds_best"])

    def test_format_bench_mentions_every_case(self, tiny_grid):
        payload = run_bench(quick=True)
        text = format_bench(payload)
        for case in payload["cases"]:
            assert case["name"] in text
        assert "M x 8" in text and "speedup" in text

    def test_engine_mismatch_is_fatal(self, tiny_grid, monkeypatch):
        import dataclasses

        real = bench_mod._timed_many

        def corrupt(system, plan, trials, engine, rounds, warmup,
                    source_factory=None, repeats=1):
            rec, results = real(system, plan, trials, engine, rounds, warmup,
                                source_factory=source_factory, repeats=repeats)
            if engine == "batch":
                results[0] = dataclasses.replace(
                    results[0], total_time=results[0].total_time + 1.0
                )
            return rec, results

        monkeypatch.setattr(bench_mod, "_timed_many", corrupt)
        with pytest.raises(RuntimeError, match="engine mismatch"):
            run_bench(quick=True)


class TestBenchCli:
    def test_bench_subcommand(self, tiny_grid, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--bench-out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "speedup" in captured.out
        assert str(out) in captured.err
        assert json.loads(out.read_text())["schema"] == SCHEMA

    def test_engine_flag_sets_process_default(
        self, tiny_grid, tmp_path, restore_engine, capsys
    ):
        out = tmp_path / "bench.json"
        assert (
            main(["bench", "--quick", "--engine", "scalar", "--bench-out", str(out)])
            == 0
        )
        assert get_default_engine() == "scalar"

    def test_engine_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--engine", "bogus"])

    def test_check_baseline_passes_against_own_output(
        self, tiny_grid, tmp_path, capsys
    ):
        out = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--bench-out", str(out)]) == 0
        # Re-running against the just-recorded baseline may legitimately
        # jitter beyond 5% on a noisy container, so check the plumbing
        # with a self-comparison baseline instead: same file, exit 0.
        code = main(
            [
                "bench", "--quick", "--bench-out", str(tmp_path / "b2.json"),
                "--check-baseline", str(out),
            ]
        )
        captured = capsys.readouterr()
        assert code in (0, 3)  # timing-dependent; plumbing must not crash
        assert "baseline" in captured.err

    def test_check_baseline_missing_file_is_an_error(self, tmp_path, capsys):
        code = main(
            [
                "bench", "--quick", "--bench-out", str(tmp_path / "b.json"),
                "--check-baseline", str(tmp_path / "missing.json"),
            ]
        )
        assert code == 1
        assert "cannot read bench baseline" in capsys.readouterr().err


def _payload(cases=(), grid=()):
    return {"cases": list(cases), "simulate_many": list(grid)}


class TestCompareToBaseline:
    def _case(self, name, best, tps=None):
        rec = {"name": name, "seconds_best": best, "seconds_mean": best}
        if tps is not None:
            rec["trials_per_sec"] = tps
        return rec

    def _cell(self, system, trials, scalar_tps, batch_tps):
        return {
            "system": system,
            "trials": trials,
            "scalar": {"seconds_best": 1.0, "trials_per_sec": scalar_tps},
            "batch": {"seconds_best": 1.0, "trials_per_sec": batch_tps},
        }

    def test_within_tolerance_passes(self):
        base = _payload(cases=[self._case("a", 1.0)])
        new = _payload(cases=[self._case("a", 1.04)])  # 4% slower
        assert bench_mod.compare_to_baseline(new, base, tolerance=0.05) == []

    def test_model_case_regression_detected(self):
        base = _payload(cases=[self._case("a", 1.0)])
        new = _payload(cases=[self._case("a", 1.2)])  # 20% slower
        findings = bench_mod.compare_to_baseline(new, base, tolerance=0.05)
        assert len(findings) == 1
        assert "case a" in findings[0]

    def test_grid_throughput_regression_detected(self):
        base = _payload(grid=[self._cell("B", 200, 1000.0, 8000.0)])
        new = _payload(grid=[self._cell("B", 200, 1000.0, 7000.0)])
        findings = bench_mod.compare_to_baseline(new, base, tolerance=0.05)
        assert len(findings) == 1
        assert "batch" in findings[0] and "B x 200" in findings[0]

    def test_faster_is_never_a_finding(self):
        base = _payload(
            cases=[self._case("a", 1.0)],
            grid=[self._cell("B", 200, 1000.0, 8000.0)],
        )
        new = _payload(
            cases=[self._case("a", 0.5)],
            grid=[self._cell("B", 200, 2000.0, 16000.0)],
        )
        assert bench_mod.compare_to_baseline(new, base) == []

    def test_unmatched_cells_ignored(self):
        base = _payload(cases=[self._case("only-in-baseline", 1.0)])
        new = _payload(cases=[self._case("only-in-new", 9.0)])
        assert bench_mod.compare_to_baseline(new, base) == []

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            bench_mod.compare_to_baseline(_payload(), _payload(), tolerance=0.0)


class TestBaselineDeflake:
    """The gate must be noise-proof: medians, tunable tolerance, loud
    schema mismatches — a flaky bench gate is worse than none."""

    def test_repeats_keep_medians(self, tiny_grid):
        payload = run_bench(quick=True, repeats=2)
        assert payload["repeats"] == 2
        for case in payload["cases"]:
            assert case["repeats"] == 2
            assert case["seconds_best"] > 0.0

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_bench(quick=True, repeats=0)

    def test_schema_mismatch_is_loud(self, tiny_grid, tmp_path, capsys):
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({"schema": "repro-bench-v0", "cases": []}))
        code = main(
            [
                "bench", "--quick", "--bench-out", str(tmp_path / "b.json"),
                "--check-baseline", str(stale),
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "schema" in err
        assert "re-record the baseline" in err

    def test_tolerance_flag_out_of_range(self, tmp_path, capsys):
        code = main(
            [
                "bench", "--quick", "--bench-out", str(tmp_path / "b.json"),
                "--baseline-tol", "1.5",
            ]
        )
        assert code == 1
        assert "tolerance must be in (0, 1)" in capsys.readouterr().err

    def test_bad_env_tolerance_is_an_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_TOL", "lots")
        code = main(
            ["bench", "--quick", "--bench-out", str(tmp_path / "b.json")]
        )
        assert code == 1
        assert "REPRO_BENCH_TOL" in capsys.readouterr().err

    def test_gated_run_reports_tolerance_and_repeats(
        self, tiny_grid, tmp_path, monkeypatch, capsys
    ):
        out = tmp_path / "b.json"
        assert main(["bench", "--quick", "--bench-out", str(out)]) == 0
        monkeypatch.setenv("REPRO_BENCH_TOL", "0.9")  # env fallback path
        code = main(
            [
                "bench", "--quick", "--bench-out", str(tmp_path / "b2.json"),
                "--check-baseline", str(out), "--baseline-repeats", "2",
            ]
        )
        assert code == 0  # at 90% tolerance only a real break fails
        err = capsys.readouterr().err
        assert "within tolerance (90%, median of 2)" in err
        assert json.loads((tmp_path / "b2.json").read_text())["repeats"] == 2

    def test_flag_beats_env(self, tiny_grid, tmp_path, monkeypatch, capsys):
        out = tmp_path / "b.json"
        assert main(["bench", "--quick", "--bench-out", str(out)]) == 0
        monkeypatch.setenv("REPRO_BENCH_TOL", "lots")  # ignored: flag wins
        code = main(
            [
                "bench", "--quick", "--bench-out", str(tmp_path / "b2.json"),
                "--check-baseline", str(out), "--baseline-tol", "0.9",
            ]
        )
        assert code == 0
        assert "within tolerance (90%" in capsys.readouterr().err
