"""Tests for the discrete-event simulation engine substrate."""

from __future__ import annotations

import pytest

from repro.des import Environment, Event, Interrupt, Resource, Store


class TestTimeouts:
    def test_clock_advances(self):
        env = Environment()
        log = []

        def proc(env):
            yield env.timeout(2.5)
            log.append(env.now)
            yield env.timeout(1.5)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [2.5, 4.0]

    def test_timeout_value(self):
        env = Environment()
        got = []

        def proc(env):
            v = yield env.timeout(1.0, value="hello")
            got.append(v)

        env.process(proc(env))
        env.run()
        assert got == ["hello"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_simultaneous_events_fifo(self):
        env = Environment()
        order = []

        def proc(env, tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            env.process(proc(env, tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_run_until_time(self):
        env = Environment()
        log = []

        def proc(env):
            while True:
                yield env.timeout(1.0)
                log.append(env.now)

        env.process(proc(env))
        env.run(until=3.5)
        assert log == [1.0, 2.0, 3.0]
        assert env.now == 3.5


class TestEvents:
    def test_succeed_wakes_waiter(self):
        env = Environment()
        gate = env.event()
        log = []

        def waiter(env):
            v = yield gate
            log.append((env.now, v))

        def opener(env):
            yield env.timeout(5.0)
            gate.succeed("open")

        env.process(waiter(env))
        env.process(opener(env))
        env.run()
        assert log == [(5.0, "open")]

    def test_fail_propagates_exception(self):
        env = Environment()
        gate = env.event()
        caught = []

        def waiter(env):
            try:
                yield gate
            except RuntimeError as e:
                caught.append(str(e))

        env.process(waiter(env))
        gate.fail(RuntimeError("boom"))
        env.run()
        assert caught == ["boom"]

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError, match="already"):
            ev.succeed(2)

    def test_value_before_trigger_rejected(self):
        env = Environment()
        with pytest.raises(RuntimeError, match="not available"):
            _ = env.event().value

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_yield_non_event_kills_process(self):
        env = Environment()

        def proc(env):
            yield 42

        p = env.process(proc(env))
        env.run()
        with pytest.raises(RuntimeError, match="yielded"):
            _ = p.value

    def test_process_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            return "result"

        p = env.process(proc(env))
        env.run(until=p)
        assert p.value == "result"

    def test_any_of(self):
        env = Environment()

        def proc(env, d):
            yield env.timeout(d)
            return d

        a = env.process(proc(env, 5.0))
        b = env.process(proc(env, 2.0))
        first = env.any_of([a, b])
        env.run(until=first)
        ev, val = first.value
        assert ev is b and val == 2.0
        assert env.now == 2.0

    def test_all_of(self):
        env = Environment()

        def proc(env, d):
            yield env.timeout(d)
            return d

        done = env.all_of([env.process(proc(env, 5.0)), env.process(proc(env, 2.0))])
        env.run(until=done)
        assert done.value == [5.0, 2.0]
        assert env.now == 5.0


class TestInterrupts:
    def test_interrupt_delivers_cause(self):
        env = Environment()
        log = []

        def victim(env):
            try:
                yield env.timeout(10.0)
            except Interrupt as i:
                log.append((env.now, i.cause))

        def attacker(env, v):
            yield env.timeout(3.0)
            v.interrupt("sev2")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert log == [(3.0, "sev2")]

    def test_interrupted_process_continues(self):
        env = Environment()
        log = []

        def victim(env):
            try:
                yield env.timeout(10.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            log.append(env.now)

        def attacker(env, v):
            yield env.timeout(3.0)
            v.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert log == [4.0]

    def test_interrupt_finished_process_rejected(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError, match="finished"):
            p.interrupt()

    def test_stale_timeout_does_not_resume_twice(self):
        # After an interrupt, the original timeout firing must not wake
        # the process again.
        env = Environment()
        wakes = []

        def victim(env):
            try:
                yield env.timeout(5.0)
                wakes.append("timeout")
            except Interrupt:
                wakes.append("interrupt")
            yield env.timeout(20.0)

        def attacker(env, v):
            yield env.timeout(1.0)
            v.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert wakes == ["interrupt"]

    def test_unhandled_process_exception_propagates(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1.0)
            raise ValueError("broken process")

        env.process(bad(env))
        with pytest.raises(ValueError, match="broken process"):
            env.run()


class TestRunSemantics:
    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2.0)
            return 7

        p = env.process(proc(env))
        assert env.run(until=p) == 7

    def test_run_until_never_firing_event_raises(self):
        env = Environment()
        gate = env.event()  # nobody ever triggers it

        def proc(env):
            yield env.timeout(1.0)

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="drained"):
            env.run(until=gate)

    def test_run_until_already_processed_event(self):
        env = Environment()
        gate = env.event()
        gate.succeed("done")
        env.run()  # processes the trigger
        assert env.run(until=gate) == "done"

    def test_step_empty_queue_raises(self):
        with pytest.raises(RuntimeError, match="no scheduled events"):
            Environment().step()

    def test_clock_advances_to_deadline(self):
        env = Environment()
        env.process(iter_timeout(env, 1.0))
        env.run(until=10.0)
        assert env.now == 10.0

    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(TypeError, match="generator"):
            env.process(lambda: None)

    def test_any_of_with_already_fired_event(self):
        env = Environment()
        done = env.timeout(0.0, value="x")
        env.run()
        first = env.any_of([done])
        env.run()
        ev, val = first.value
        assert val == "x"

    def test_all_of_empty(self):
        env = Environment()
        done = env.all_of([])
        env.run()
        assert done.value == []


def iter_timeout(env, delay):
    yield env.timeout(delay)


class TestResource:
    def test_mutual_exclusion(self):
        env = Environment()
        r = Resource(env, capacity=1)
        spans = []

        def user(env, tag):
            req = r.request()
            yield req
            start = env.now
            yield env.timeout(2.0)
            r.release()
            spans.append((tag, start, env.now))

        for tag in "ab":
            env.process(user(env, tag))
        env.run()
        assert spans == [("a", 0.0, 2.0), ("b", 2.0, 4.0)]

    def test_capacity_two(self):
        env = Environment()
        r = Resource(env, capacity=2)
        done = []

        def user(env, tag):
            yield r.request()
            yield env.timeout(2.0)
            r.release()
            done.append((tag, env.now))

        for tag in "abc":
            env.process(user(env, tag))
        env.run()
        assert done == [("a", 2.0), ("b", 2.0), ("c", 4.0)]

    def test_release_without_request(self):
        env = Environment()
        with pytest.raises(RuntimeError):
            Resource(env).release()

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)


class TestStore:
    def test_fifo_handoff(self):
        env = Environment()
        s = Store(env)
        got = []

        def consumer(env):
            for _ in range(2):
                item = yield s.get()
                got.append((env.now, item))

        def producer(env):
            yield env.timeout(1.0)
            yield s.put("x")
            yield env.timeout(1.0)
            yield s.put("y")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(1.0, "x"), (2.0, "y")]

    def test_buffering(self):
        env = Environment()
        s = Store(env)

        def producer(env):
            yield s.put(1)
            yield s.put(2)

        env.process(producer(env))
        env.run()
        assert len(s) == 2

    def test_capacity_blocks_producer(self):
        env = Environment()
        s = Store(env, capacity=1)
        log = []

        def producer(env):
            yield s.put("a")
            log.append(("put-a", env.now))
            yield s.put("b")
            log.append(("put-b", env.now))

        def consumer(env):
            yield env.timeout(5.0)
            item = yield s.get()
            log.append((f"got-{item}", env.now))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert ("put-a", 0.0) in log
        assert ("put-b", 5.0) in log

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)
