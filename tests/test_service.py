"""Tests for the planning service (repro.service): HTTP plumbing,
telemetry tiers, circuit breaker, supervision, admission, and full
socket-level round-trips of /plan, /study and /health.

The chaos-injection coverage (crashed workers, dropped connections,
SIGKILL'd servers) lives in tests/test_service_chaos.py under ``-m
chaos``; this file covers the sunny-day contracts and the pure state
machines.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.exec import OptimizationCache, set_active_cache
from repro.exec.metrics import LatencyWindow, percentile
from repro.service import (
    BreakerOpen,
    CircuitBreaker,
    HttpError,
    PlanSupervisor,
    PlanTimeout,
    PlanningService,
    ServiceConfig,
    ServiceTelemetry,
    WorkerCrashed,
)
from repro.service.app import _parse_plan_request
from repro.service.http import Request, Response, read_request, render_response
from repro.systems import TEST_SYSTEMS


@pytest.fixture(autouse=True)
def _fresh_cache():
    previous = set_active_cache(OptimizationCache())
    yield
    set_active_cache(previous)


# ----------------------------------------------------------------------
# HTTP plumbing


def _parse(raw: bytes) -> Request | None:
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestHttp:
    def test_parse_request_with_body_and_query(self):
        body = b'{"x": 1}'
        raw = (
            b"POST /plan?deadline_ms=250 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"X-Deadline-Ms: 100\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        req = _parse(raw)
        assert req.method == "POST"
        assert req.path == "/plan"
        assert req.query == {"deadline_ms": "250"}
        assert req.headers["x-deadline-ms"] == "100"  # names lowercased
        assert req.json() == {"x": 1}

    def test_clean_eof_is_none(self):
        assert _parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as info:
            _parse(b"NONSENSE\r\n\r\n")
        assert info.value.status == 400

    def test_truncated_body(self):
        with pytest.raises(HttpError) as info:
            _parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert info.value.status == 400

    def test_oversized_body_is_413(self):
        from repro.service.http import MAX_BODY_BYTES

        raw = f"POST / HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES + 1}\r\n\r\n"
        with pytest.raises(HttpError) as info:
            _parse(raw.encode())
        assert info.value.status == 413

    def test_bad_json_body_is_400(self):
        req = _parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\nnot")
        with pytest.raises(HttpError) as info:
            req.json()
        assert info.value.status == 400

    def test_render_response_json(self):
        raw = render_response(Response(200, {"a": 1}))
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert b"content-type: application/json" in head
        assert b"connection: close" in head
        assert json.loads(payload) == {"a": 1}

    def test_render_response_extra_headers(self):
        raw = render_response(
            Response(429, {"error": "x"}, headers={"Retry-After": "3"})
        )
        assert b"retry-after: 3" in raw.split(b"\r\n\r\n")[0]


# ----------------------------------------------------------------------
# Metrics primitives


class TestPercentile:
    def test_nearest_rank(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_latency_window_summary(self):
        window = LatencyWindow(limit=100)
        for ms in range(1, 101):
            window.record(ms / 1000.0)
        summary = window.summary()
        assert summary["count"] == 100
        assert summary["p50_ms"] == pytest.approx(50.0)
        assert summary["p95_ms"] == pytest.approx(95.0)
        assert summary["p99_ms"] == pytest.approx(99.0)
        assert summary["max_ms"] == pytest.approx(100.0)

    def test_latency_window_is_bounded(self):
        window = LatencyWindow(limit=4)
        for ms in (1, 2, 3, 4, 5, 6):
            window.record(ms / 1000.0)
        summary = window.summary()
        assert summary["count"] == 6  # lifetime events
        assert summary["window"] == 4  # bounded memory
        assert summary["p50_ms"] >= 4.0  # old events aged out


class TestTelemetry:
    def test_three_tiers_present(self):
        tel = ServiceTelemetry(sample_interval=0.5)
        tel.sample(queue_depth=2, in_flight=1)
        tel.record_request("/plan", 200, 0.010)
        tel.record_request("/plan", 200, 0.030)
        tel.record_request("/health", 200, 0.001)
        tel.record_shed()
        tel.record_coalesced()
        snap = tel.snapshot()
        assert snap["sampled"]["interval_seconds"] == 0.5
        assert snap["sampled"]["series"][-1]["queue_depth"] == 2
        assert snap["events"]["window"] == 3
        agg = snap["aggregated"]
        assert agg["requests_total"] == 3
        assert agg["by_status"] == {"200": 3}
        assert agg["shed_total"] == 1
        assert agg["coalesced_total"] == 1
        assert agg["latency_ms"]["count"] == 3
        assert set(agg["latency_by_path"]) == {"/plan", "/health"}
        assert agg["latency_by_path"]["/plan"]["count"] == 2
        assert agg["latency_by_path"]["/plan"]["p50_ms"] >= 10.0


# ----------------------------------------------------------------------
# Circuit breaker


class TestCircuitBreaker:
    def test_trips_after_threshold_and_half_opens(self):
        breaker = CircuitBreaker(failure_threshold=2, base_backoff=0.05)
        breaker.check()
        breaker.record_failure()
        breaker.check()  # one failure: still closed
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(BreakerOpen) as info:
            breaker.check()
        assert info.value.retry_after <= 0.05
        time.sleep(0.06)
        breaker.check()  # backoff elapsed: this caller is the probe
        assert breaker.state == "half_open"
        with pytest.raises(BreakerOpen):
            breaker.check()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.describe()["trips"] == 1

    def test_probe_failure_doubles_backoff(self):
        breaker = CircuitBreaker(failure_threshold=1, base_backoff=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        breaker.check()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        assert breaker._backoff == pytest.approx(0.1)
        assert breaker.describe()["trips"] == 2

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(base_backoff=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(base_backoff=2.0, max_backoff=1.0)


# ----------------------------------------------------------------------
# Supervisor (pool lifecycle without HTTP)


def _double(value):
    return value * 2


def _sleep_forever(_value):
    time.sleep(60.0)


def _exit_in_worker(value):
    """Kills pool workers; survives (returns) when run in the driver."""
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return value


class TestPlanSupervisor:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_runs_on_pool(self):
        sup = PlanSupervisor(workers=1)
        try:
            assert self._run(sup.run(_double, 21)) == 42
        finally:
            sup.shutdown()

    def test_timeout_raises_plan_timeout_and_recovers(self):
        sup = PlanSupervisor(workers=1)
        try:
            async def scenario():
                with pytest.raises(PlanTimeout):
                    await sup.run(_sleep_forever, 0, timeout=0.3)
                # the hung worker was terminated; a fresh pool still works
                return await sup.run(_double, 5, timeout=30.0)

            assert self._run(scenario()) == 10
            assert sup.timeouts == 1
        finally:
            sup.shutdown()

    def test_second_crash_for_one_request_raises(self):
        sup = PlanSupervisor(workers=1, max_rebuilds=5)
        try:
            with pytest.raises(WorkerCrashed):
                self._run(sup.run(_exit_in_worker, 1))
            assert sup.rebuilds == 2
        finally:
            sup.shutdown()

    def test_exhausted_rebuilds_fall_back_to_serial(self, capsys):
        sup = PlanSupervisor(workers=1, max_rebuilds=0)
        try:
            assert self._run(sup.run(_exit_in_worker, "ok")) == "ok"
            assert sup.serial_fallback is True
            assert "giving up on multiprocessing" in capsys.readouterr().err
            # subsequent calls stay serial
            assert self._run(sup.run(_double, 3)) == 6
        finally:
            sup.shutdown()


# ----------------------------------------------------------------------
# Request validation + admission (no sockets)


class TestParsePlanRequest:
    def test_catalog_name(self):
        system, technique, mo, so = _parse_plan_request(
            {"system": "B", "technique": "Dauwe"}
        )
        assert system.name == "B"
        assert technique == "dauwe"
        assert mo == {} and so == {}

    def test_inline_spec(self):
        inline = TEST_SYSTEMS["M"].to_dict()
        system, _, _, _ = _parse_plan_request(
            {"system": inline, "technique": "daly"}
        )
        assert system.mtbf == TEST_SYSTEMS["M"].mtbf

    @pytest.mark.parametrize(
        "body",
        [
            [],
            {},
            {"system": "no-such-system", "technique": "dauwe"},
            {"system": "B"},
            {"system": "B", "technique": "no-such-technique"},
            {"system": "B", "technique": "dauwe", "model_options": 7},
        ],
    )
    def test_invalid_is_422(self, body):
        with pytest.raises(HttpError) as info:
            _parse_plan_request(body)
        assert info.value.status == 422


class TestAdmission:
    def test_queue_full_sheds_429_with_retry_after(self):
        async def scenario():
            svc = PlanningService(ServiceConfig(queue_limit=1, workers=1))
            first = svc._admitted()
            await first.__aenter__()  # takes the only slot
            waiter = asyncio.ensure_future(svc._admitted().__aenter__())
            await asyncio.sleep(0.02)  # waiter is now queued
            assert svc._waiting == 1
            with pytest.raises(HttpError) as info:
                await svc._admitted().__aenter__()
            assert info.value.status == 429
            assert "retry-after" in info.value.headers
            await first.__aexit__(None, None, None)
            admission = await waiter  # freed slot admits the queued one
            await admission.__aexit__(None, None, None)
            assert svc.telemetry.snapshot()["aggregated"]["shed_total"] == 1

        asyncio.run(scenario())

    def test_draining_refuses_503(self):
        async def scenario():
            svc = PlanningService(ServiceConfig())
            svc._shutdown.set()
            with pytest.raises(HttpError) as info:
                await svc._admitted().__aenter__()
            assert info.value.status == 503

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Socket-level round trips


def _run_service(client_fn, **config_kwargs):
    """Run ``client_fn(url)`` in a thread against an in-process service.

    Returns ``(client result, exit code)`` after a graceful drain.
    """
    out: dict = {}

    async def main():
        svc = PlanningService(ServiceConfig(**config_kwargs))
        await svc.start()
        url = f"http://127.0.0.1:{svc.port}"
        errors: list[BaseException] = []

        def runner():
            try:
                out["value"] = client_fn(url)
            except BaseException as err:  # surfaced after drain
                errors.append(err)

        thread = threading.Thread(target=runner)
        thread.start()
        while thread.is_alive():
            await asyncio.sleep(0.02)
        thread.join()
        svc.request_shutdown()
        out["exit"] = await svc.run_until_shutdown()
        if errors:
            raise errors[0]

    asyncio.run(main())
    return out.get("value"), out["exit"]


def _post(url: str, path: str, body: dict, headers: dict | None = None):
    req = urllib.request.Request(
        f"{url}{path}",
        data=json.dumps(body).encode(),
        method="POST",
        headers=headers or {},
    )
    with urllib.request.urlopen(req, timeout=60) as resp:
        return resp.status, json.loads(resp.read())


def _get(url: str, path: str):
    with urllib.request.urlopen(f"{url}{path}", timeout=30) as resp:
        return resp.status, json.loads(resp.read())


class TestServiceRoundTrip:
    def test_plan_miss_then_hit_then_health(self):
        def client(url):
            body = {"system": "B", "technique": "dauwe"}
            status1, first = _post(url, "/plan", body)
            status2, second = _post(url, "/plan", body)
            _, health = _get(url, "/health")
            return status1, first, status2, second, health

        (s1, first, s2, second, health), exit_code = _run_service(client)
        assert (s1, s2) == (200, 200)
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert first["result"] == second["result"]
        assert first["result"]["certificate"] is not None
        assert first["predicted_efficiency"] == pytest.approx(
            first["result"]["predicted_efficiency"]
        )
        # /health: breaker closed, cache ratio counted, latency tiers live
        assert health["status"] == "ok"
        assert health["breaker"]["state"] == "closed"
        assert health["cache"]["hits"] >= 1
        assert 0 < health["cache"]["hit_ratio"] <= 1
        agg = health["metrics"]["aggregated"]
        assert agg["requests_total"] >= 2
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            assert agg["latency_ms"][key] > 0
        assert exit_code == 0

    def test_plan_round_trips_certificate(self):
        from repro.core.interfaces import OptimizationResult
        from repro.experiments.runner import optimize_technique
        from repro.systems import get_system

        def client(url):
            return _post(url, "/plan", {"system": "D4", "technique": "moody"})

        (_, payload), _ = _run_service(client)
        served = OptimizationResult.from_dict(payload["result"])
        direct = optimize_technique(get_system("D4"), "moody")
        assert served.to_dict() == direct.to_dict()
        assert served.certificate.evaluations > 0

    def test_deadline_expiry_is_504_not_a_hang(self):
        def client(url):
            start = time.monotonic()
            try:
                _post(
                    url, "/plan",
                    {"system": "D8", "technique": "dauwe"},
                    headers={"X-Deadline-Ms": "1"},
                )
            except urllib.error.HTTPError as err:
                return err.code, time.monotonic() - start
            pytest.fail("expected a 504")

        (code, elapsed), _ = _run_service(client)
        assert code == 504
        assert elapsed < 10.0

    def test_single_flight_coalesces_identical_requests(self):
        body = {
            "system": "D7",
            "technique": "dauwe",
        }

        def client(url):
            results = [None, None]

            def issue(slot):
                results[slot] = _post(url, "/plan", body)[1]

            threads = [
                threading.Thread(target=issue, args=(i,)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            _, health = _get(url, "/health")
            return results, health

        (results, health), _ = _run_service(client)
        states = sorted(r["cache"] for r in results)
        assert "miss" in states
        assert states != ["miss", "miss"]  # second rode the first (or its cache)
        assert results[0]["result"] == results[1]["result"]
        if "coalesced" in states:
            assert health["metrics"]["aggregated"]["coalesced_total"] >= 1

    def test_errors_and_unknown_routes(self):
        def client(url):
            findings = {}
            for label, method, path, body in [
                ("404", "GET", "/nope", None),
                ("405", "GET", "/plan", None),
                ("422", "POST", "/plan", {"system": "no-such", "technique": "dauwe"}),
                ("404-study", "GET", "/study/ffff", None),
            ]:
                try:
                    if body is None:
                        urllib.request.urlopen(f"{url}{path}", timeout=10)
                    else:
                        _post(url, path, body)
                except urllib.error.HTTPError as err:
                    findings[label] = err.code
            # malformed JSON body
            req = urllib.request.Request(
                f"{url}/plan", data=b"not json", method="POST"
            )
            try:
                urllib.request.urlopen(req, timeout=10)
            except urllib.error.HTTPError as err:
                findings["400"] = err.code
            return findings

        findings, _ = _run_service(client)
        assert findings == {
            "404": 404, "405": 405, "422": 422, "404-study": 404, "400": 400,
        }

    def test_study_submit_poll_and_dedupe(self, tmp_path):
        study = {
            "study": "svc-study",
            "systems": ["M"],
            "techniques": ["dauwe", "daly"],
            "trials": 3,
            "seed": 5,
        }

        def client(url):
            status, submitted = _post(url, "/study", study)
            assert status == 202
            study_hash = submitted["study_hash"]
            for _ in range(600):
                _, polled = _get(url, f"/study/{study_hash}")
                if polled["status"] != "running":
                    break
                time.sleep(0.05)
            status2, reposted = _post(url, "/study", study)
            return submitted, polled, status2, reposted

        (submitted, polled, status2, reposted), exit_code = _run_service(
            client, service_dir=str(tmp_path / "svc")
        )
        assert submitted["status"] == "running"
        assert polled["status"] == "done"
        assert polled["completed"] == polled["total"] == 2
        assert len(polled["outcomes"]) == 2
        assert polled["manifest"]["study"] == "svc-study"
        # identical re-POST returns the finished job, no second run
        assert status2 == 200
        assert reposted["status"] == "done"
        assert reposted["outcomes"] == polled["outcomes"]
        assert exit_code == 0

    def test_study_results_match_direct_execution(self, tmp_path):
        from repro.scenarios import StudySpec, execute_study

        study = {
            "study": "svc-parity",
            "systems": ["M"],
            "techniques": ["daly"],
            "trials": 4,
            "seed": 9,
        }

        def client(url):
            _, submitted = _post(url, "/study", study)
            study_hash = submitted["study_hash"]
            for _ in range(600):
                _, polled = _get(url, f"/study/{study_hash}")
                if polled["status"] != "running":
                    return polled
                time.sleep(0.05)
            pytest.fail("study never finished")

        polled, _ = _run_service(client, service_dir=str(tmp_path / "svc"))
        direct = execute_study(StudySpec.from_dict(study))
        assert polled["outcomes"] == [o.to_dict() for o in direct.outcomes]
