"""Smoke test: every script in examples/ runs end to end.

Each example is executed as a subprocess (the way a reader would run it)
with quick settings where the script accepts them.  These are liveness
checks, not numeric ones — an example that crashes on import or mid-run
is a broken front door.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"

#: script name -> quick-run argv tail (empty: the script is already quick)
QUICK_ARGS = {
    "compare_techniques.py": ["M", "8"],
}


def _scripts() -> list[Path]:
    return sorted(EXAMPLES.glob("*.py"))


def test_every_example_is_covered():
    assert _scripts(), "examples/ directory is missing or empty"
    unknown = set(QUICK_ARGS) - {p.name for p in _scripts()}
    assert not unknown, f"QUICK_ARGS names missing scripts: {unknown}"


@pytest.mark.parametrize("script", _scripts(), ids=lambda p: p.name)
def test_example_runs(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script), *QUICK_ARGS.get(script.name, [])],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        cwd=REPO,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed (rc={proc.returncode})\n"
        f"stdout:\n{proc.stdout[-2000:]}\nstderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
