"""Numerics guard: primitives, diagnostics, certificates, model threading.

Covers the three invariants of :mod:`repro.core.numerics` — finite-or-inf,
bitwise exactness on finite paths, and loudness of every ``+inf`` — plus
the NaN rejection added to :class:`OptimizationResult` and
``predict_efficiency``.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.interfaces import OptimizationResult
from repro.core.numerics import (
    ModelDiagnostics,
    NumericsEvent,
    OptimizationCertificate,
    flag,
    log1p_sum,
    prod1p,
    safe_div,
    safe_expm1,
)
from repro.core.plan import CheckpointPlan
from repro.models import TECHNIQUES, make_model
from repro.systems import STRESS_SYSTEMS, get_system

ALL_TECHNIQUES = ("dauwe", "di", "moody", "benoit", "daly")


class TestModelDiagnostics:
    def test_record_aggregates_counts_and_worst(self):
        diag = ModelDiagnostics()
        diag.record("dauwe.gamma", "clamp", count=3, worst={"rate_time": 600.0})
        diag.record("dauwe.gamma", "clamp", count=2, worst={"rate_time": 900.0})
        (ev,) = diag.events()
        assert ev.count == 5
        assert ev.worst == {"rate_time": 900.0}
        assert diag.counts() == {"dauwe.gamma:clamp": 5}
        assert diag.total == 5
        assert bool(diag)

    def test_zero_count_record_is_dropped(self):
        diag = ModelDiagnostics()
        diag.record("x", "clamp", count=0)
        assert not diag
        assert diag.total == 0

    def test_record_mask_counts_true_cells(self):
        diag = ModelDiagnostics()
        values = np.array([1.0, 700.0, 2.0, 9000.0])
        diag.record_mask("m.site", "overflow", values > 500.0, values=values,
                         label="x")
        (ev,) = diag.events()
        assert ev.count == 2
        assert ev.worst == {"x": 9000.0}

    def test_record_mask_nan_offender_ranks_worst(self):
        diag = ModelDiagnostics()
        values = np.array([math.nan, 10.0])
        diag.record_mask("m.site", "nan", np.array([True, True]), values=values)
        (ev,) = diag.events()
        assert ev.worst["value"] == math.inf

    def test_merge_folds_events(self):
        a, b = ModelDiagnostics(), ModelDiagnostics()
        a.record("s", "clamp", count=1, worst={"v": 1.0})
        b.record("s", "clamp", count=4, worst={"v": 7.0})
        b.record("t", "nan", count=2)
        a.merge(b)
        assert a.counts() == {"s:clamp": 5, "t:nan": 2}
        assert a.events()[0].worst == {"v": 7.0}

    def test_events_sorted_deterministically(self):
        diag = ModelDiagnostics()
        diag.record("z.site", "nan")
        diag.record("a.site", "clamp")
        diag.record("a.site", "overflow")
        keys = [(ev.site, ev.kind) for ev in diag.events()]
        assert keys == sorted(keys)

    def test_dict_round_trip(self):
        diag = ModelDiagnostics()
        diag.record("dauwe.gamma", "overflow", count=7, worst={"x": 712.5})
        restored = ModelDiagnostics.from_dict(
            json.loads(json.dumps(diag.to_dict()))
        )
        assert restored.counts() == diag.counts()
        assert restored.events()[0].worst == diag.events()[0].worst

    def test_numerics_event_round_trip(self):
        ev = NumericsEvent(site="s", kind="clamp", count=3, worst={"v": 2.0})
        assert NumericsEvent.from_dict(ev.to_dict()) == ev


class TestPrimitives:
    def test_flag_returns_mask_unchanged(self):
        diag = ModelDiagnostics()
        mask = np.array([True, False, True])
        out = flag(diag, "s", "clamp", mask, values=np.array([1.0, 2.0, 3.0]))
        assert out is mask
        assert diag.counts() == {"s:clamp": 2}

    def test_flag_without_diagnostics_is_identity(self):
        mask = np.array([True])
        assert flag(None, "s", "clamp", mask) is mask

    def test_safe_expm1_matches_numpy_on_finite(self):
        x = np.array([-3.0, 0.0, 1.5, 100.0])
        diag = ModelDiagnostics()
        out = safe_expm1(x, diag, "s")
        np.testing.assert_array_equal(out, np.expm1(x))
        assert not diag  # nothing overflowed

    def test_safe_expm1_records_overflow(self):
        diag = ModelDiagnostics()
        out = safe_expm1(np.array([1.0, 1e4]), diag, "s")
        assert out[1] == math.inf
        assert diag.counts() == {"s:overflow": 1}
        assert diag.events()[0].worst == {"x": 1e4}

    def test_safe_div_matches_ieee_and_records(self):
        diag = ModelDiagnostics()
        out = safe_div(
            np.array([1.0, 1.0, 0.0]), np.array([4.0, 0.0, 0.0]), diag, "s"
        )
        assert out[0] == 0.25
        assert out[1] == math.inf
        assert math.isnan(out[2])
        counts = diag.counts()
        assert counts["s:divergence"] == 1
        assert counts["s:nan"] == 1

    def test_prod1p_identical_to_naive_chain(self):
        factors = [np.array([0.5, 2.0]), np.array([1.0, 3.0]), 0.25]
        naive = (factors[0] + 1.0) * (factors[1] + 1.0) * (0.25 + 1.0)
        np.testing.assert_array_equal(prod1p(factors), naive)

    def test_prod1p_records_overflow_with_log_magnitude(self):
        diag = ModelDiagnostics()
        out = prod1p([1e308, 1e308], diag, "s")
        assert np.isinf(out)
        (ev,) = diag.events()
        assert ev.kind == "overflow"
        expected = float(log1p_sum([1e308, 1e308]))
        assert ev.worst["log_product"] == pytest.approx(expected)


class TestOptimizationCertificate:
    def test_round_trip_through_json(self):
        cert = OptimizationCertificate(
            evaluations=1234,
            events={"dauwe.gamma:clamp": 9},
            refinement_moved=True,
        )
        restored = OptimizationCertificate.from_dict(
            json.loads(json.dumps(cert.to_dict()))
        )
        assert restored == cert
        assert restored.total_events == 9

    def test_from_diagnostics(self):
        diag = ModelDiagnostics()
        diag.record("s", "clamp", count=2)
        cert = OptimizationCertificate.from_diagnostics(diag, evaluations=10)
        assert cert.events == {"s:clamp": 2}
        assert not cert.refinement_moved


class TestInterfacesNaNRejection:
    def _plan(self):
        return CheckpointPlan((1, 2), 5.0, (3,))

    def test_result_rejects_nan_time(self):
        with pytest.raises(ValueError, match="numerics-guard"):
            OptimizationResult(
                plan=self._plan(),
                predicted_time=math.nan,
                predicted_efficiency=0.9,
                evaluations=1,
            )

    def test_result_rejects_nan_efficiency(self):
        with pytest.raises(ValueError, match="numerics-guard"):
            OptimizationResult(
                plan=self._plan(),
                predicted_time=100.0,
                predicted_efficiency=math.nan,
                evaluations=1,
            )

    def test_predict_efficiency_rejects_nan_model_output(self, tiny2):
        model = make_model("dauwe", tiny2)
        model.predict_time = lambda plan, **kw: math.nan  # force a bad model
        with pytest.raises(ValueError, match="NaN"):
            model.predict_efficiency(self._plan())

    def test_result_serialization_round_trip_with_certificate(self):
        result = OptimizationResult(
            plan=self._plan(),
            predicted_time=123.456,
            predicted_efficiency=0.9,
            evaluations=42,
            certificate=OptimizationCertificate(
                evaluations=42, events={"s:clamp": 1}, refinement_moved=True
            ),
        )
        restored = OptimizationResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert restored == result
        assert restored.certificate is not None
        assert restored.certificate.events == {"s:clamp": 1}

    def test_result_serialization_without_certificate(self):
        result = OptimizationResult(
            plan=self._plan(),
            predicted_time=123.456,
            predicted_efficiency=0.9,
            evaluations=42,
        )
        data = result.to_dict()
        assert "certificate" not in data
        assert OptimizationResult.from_dict(data) == result


@pytest.mark.parametrize("technique", ALL_TECHNIQUES)
class TestModelGuardThreading:
    """Every model: diagnostics change nothing, and +inf is always loud."""

    def _probe(self, model, taus):
        levels = model.candidate_level_subsets()[0]
        counts = (2,) * (len(levels) - 1)
        return levels, counts, np.asarray(taus, dtype=float)

    def test_diagnostics_do_not_change_finite_predictions(self, technique):
        model = make_model(technique, get_system("B"))
        levels, counts, taus = self._probe(model, np.geomspace(0.1, 100.0, 32))
        bare = model.predict_time_batch(levels, counts, taus)
        diag = ModelDiagnostics()
        guarded = model.predict_time_batch(levels, counts, taus, diagnostics=diag)
        np.testing.assert_array_equal(bare, guarded)

    def test_extreme_regime_is_finite_or_inf_and_loud(self, technique):
        model = make_model(technique, STRESS_SYSTEMS["storm"])
        levels, counts, taus = self._probe(
            model, [1e-300, 1e-6, 1.0, 30.0, 60.0]
        )
        diag = ModelDiagnostics()
        out = model.predict_time_batch(levels, counts, taus, diagnostics=diag)
        assert not np.isnan(out).any()
        assert np.all(out[np.isfinite(out)] > 0)
        if np.isinf(out).any():
            assert diag.total > 0, "silent +inf: loudness invariant broken"

    def test_supports_diagnostics_flag_set(self, technique):
        assert TECHNIQUES[technique].supports_diagnostics is True


class TestSweepCertificate:
    def test_sweep_attaches_certificate(self, tiny2):
        model = make_model("dauwe", tiny2)
        result = model.optimize(tau0_points=16)
        cert = result.certificate
        assert cert is not None
        assert cert.evaluations == result.evaluations
        assert cert.evaluations > 0

    def test_certificate_counts_sweep_clamps(self):
        model = make_model("dauwe", STRESS_SYSTEMS["deep5"])
        result = model.optimize(tau0_points=16)
        assert result.certificate is not None
        # deep5 is failure-dominated enough that some grid cells clamp.
        assert result.certificate.total_events > 0

    def test_daly_closed_form_certificate(self):
        model = make_model("daly", get_system("M"))
        result = model.optimize()
        assert result.certificate is not None
        assert result.certificate.evaluations == result.evaluations

    def test_daly_hopeless_system_raises_runtime_error(self):
        model = make_model("daly", STRESS_SYSTEMS["storm"])
        with pytest.raises(RuntimeError, match="no feasible plan"):
            model.optimize()
