"""Bench: Figure 2 — five techniques across Table-I systems.

Asserted paper shape (Section IV-C):

* multilevel (dauwe/di/moody) beats Daly on every benched system, by a
  large factor at the hard end ("Daly's ... efficiency is 50% less than
  that of multilevel checkpointing in the worst case");
* Daly's own prediction is accurate even where its protocol loses;
* Benoit's prediction is optimistic on the hard systems;
* dauwe/di/moody land within a few points of each other.

The regeneration benchmark re-validates every shape check, so the
``--benchmark-only`` run exercises them too.
"""

from __future__ import annotations

import pytest
from conftest import BENCH_TRIALS, rows_by, show

from repro.experiments import figure2

SYSTEMS = ("M", "B", "D1", "D4", "D7", "D9")


@pytest.fixture(scope="module")
def result():
    return figure2.run(trials=BENCH_TRIALS, seed=0, systems=SYSTEMS)


def check_multilevel_beats_daly(result):
    for system in SYSTEMS:
        daly = rows_by(result, system=system, technique="daly")[0]
        for tech in ("dauwe", "di", "moody"):
            multi = rows_by(result, system=system, technique=tech)[0]
            assert multi["sim efficiency"] >= daly["sim efficiency"] - 0.03, (
                system,
                tech,
            )


def check_daly_gap_large_on_hard_systems(result):
    daly = rows_by(result, system="D9", technique="daly")[0]
    dauwe = rows_by(result, system="D9", technique="dauwe")[0]
    assert dauwe["sim efficiency"] > 1.5 * daly["sim efficiency"]


def check_daly_prediction_accurate(result):
    for system in SYSTEMS:
        row = rows_by(result, system=system, technique="daly")[0]
        assert abs(row["error"]) < 0.06, system


def check_benoit_optimistic_on_hard_systems(result):
    for system in ("D7", "D9"):
        row = rows_by(result, system=system, technique="benoit")[0]
        assert row["error"] > 0.1, system


def check_best_three_within_a_few_points(result):
    for system in SYSTEMS:
        effs = [
            rows_by(result, system=system, technique=t)[0]["sim efficiency"]
            for t in ("dauwe", "di", "moody")
        ]
        assert max(effs) - min(effs) < 0.12, system


def check_efficiency_decreases_with_difficulty(result):
    means = []
    for system in ("M", "D1", "D4", "D9"):
        rows = [
            rows_by(result, system=system, technique=t)[0]["sim efficiency"]
            for t in ("dauwe", "di", "moody")
        ]
        means.append(sum(rows) / len(rows))
    assert all(b < a + 0.02 for a, b in zip(means, means[1:]))


ALL_CHECKS = [
    check_multilevel_beats_daly,
    check_daly_gap_large_on_hard_systems,
    check_daly_prediction_accurate,
    check_benoit_optimistic_on_hard_systems,
    check_best_three_within_a_few_points,
    check_efficiency_decreases_with_difficulty,
]


def test_figure2_regeneration(benchmark, result):
    benchmark.pedantic(
        figure2.run,
        kwargs=dict(trials=2, seed=1, systems=("D1",), techniques=("dauwe", "daly")),
        rounds=1,
        iterations=1,
    )
    show(result)
    assert len(result.rows) == len(SYSTEMS) * 5
    for check in ALL_CHECKS:
        check(result)


@pytest.mark.parametrize("check", ALL_CHECKS, ids=lambda c: c.__name__)
def test_figure2_shapes(check, result):
    check(result)
