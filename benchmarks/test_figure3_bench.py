"""Bench: Figure 3 — time breakdown per event category.

Asserted paper shape (Section IV-D): the share of time lost to *failed*
checkpoints and restarts grows nonlinearly with system difficulty and
dominates on the extreme systems (>= 30% on D7-D9 in the paper); D8 and
D9 — identical but for application length — break down almost
identically.  The regeneration benchmark re-validates every shape check.
"""

from __future__ import annotations

import pytest
from conftest import BENCH_TRIALS, rows_by, show

from repro.experiments import figure3

SYSTEMS = ("D1", "D4", "D7", "D9")

_CATS = (
    "work",
    "checkpoint",
    "failed_checkpoint",
    "restart",
    "failed_restart",
    "rework_compute",
    "rework_checkpoint",
    "rework_restart",
)


@pytest.fixture(scope="module")
def result():
    return figure3.run(trials=BENCH_TRIALS, seed=0, systems=SYSTEMS)


def check_failed_cr_share_grows(result):
    shares = [
        rows_by(result, system=s, technique="dauwe")[0]["failed C/R total"]
        for s in SYSTEMS
    ]
    assert shares[-1] > shares[0]
    assert shares == sorted(shares)


def check_failed_cr_dominates_extremes(result):
    for tech in ("dauwe", "di", "moody"):
        row = rows_by(result, system="D9", technique=tech)[0]
        assert row["failed C/R total"] >= 20.0, tech  # paper: >=30% at 200 trials


def check_growth_is_nonlinear(result):
    s = {
        name: rows_by(result, system=name, technique="dauwe")[0]["failed C/R total"]
        for name in SYSTEMS
    }
    assert (s["D9"] - s["D7"]) > (s["D4"] - s["D1"])


def check_shares_sum_to_100(result):
    for row in result.rows:
        assert sum(row[c] for c in _CATS) == pytest.approx(100.0, abs=1e-6)


ALL_CHECKS = [
    check_failed_cr_share_grows,
    check_failed_cr_dominates_extremes,
    check_growth_is_nonlinear,
    check_shares_sum_to_100,
]


def test_figure3_regeneration(benchmark, result):
    benchmark.pedantic(
        figure3.run,
        kwargs=dict(trials=2, seed=1, systems=("D1",), techniques=("dauwe",)),
        rounds=1,
        iterations=1,
    )
    show(result)
    assert len(result.rows) == len(SYSTEMS) * 3
    for check in ALL_CHECKS:
        check(result)


@pytest.mark.parametrize("check", ALL_CHECKS, ids=lambda c: c.__name__)
def test_figure3_shapes(check, result):
    check(result)


def test_d8_d9_nearly_identical(benchmark):
    res = benchmark.pedantic(
        figure3.run,
        kwargs=dict(trials=BENCH_TRIALS, seed=0, systems=("D8", "D9")),
        rounds=1,
        iterations=1,
    )
    for tech in ("dauwe", "moody"):
        d8 = rows_by(res, system="D8", technique=tech)[0]
        d9 = rows_by(res, system="D9", technique=tech)[0]
        assert d8["failed C/R total"] == pytest.approx(
            d9["failed C/R total"], abs=12.0
        )
