"""Bench: Table I regeneration (catalog integrity + render cost)."""

from __future__ import annotations

from conftest import show

from repro.experiments import table1
from repro.systems import TEST_SYSTEM_ORDER


def test_table1_regeneration(benchmark):
    result = benchmark(table1.run)
    show(result)
    assert [r["system"] for r in result.rows] == list(TEST_SYSTEM_ORDER)
    # Table I shape: 11 systems, difficulty roughly tracks MTBF/top-cost.
    first, last = result.rows[0], result.rows[-1]
    assert first["MTBF (min)"] > last["MTBF (min)"]
