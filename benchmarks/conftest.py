"""Shared helpers for the benchmark harness.

Each ``test_figureN_bench`` module regenerates a reduced-trial version of
the corresponding paper figure under ``pytest-benchmark`` timing, prints
the rows (run pytest with ``-s`` to see them), and asserts the *shape*
claims the paper makes for that figure.  Trial counts are deliberately
small; the full-fidelity tables live in EXPERIMENTS.md and are produced
by ``python -m repro all``.
"""

from __future__ import annotations

import pytest

#: Reduced trial count used by the figure benches.
BENCH_TRIALS = 10


def show(result) -> None:
    """Print an experiment table under ``pytest -s``."""
    print()
    print(result.render())


def rows_by(result, **filters):
    """Select rows of an ExperimentResult by column equality."""
    out = []
    for row in result.rows:
        if all(row.get(k) == v for k, v in filters.items()):
            out.append(row)
    return out


@pytest.fixture(scope="session")
def bench_trials() -> int:
    return BENCH_TRIALS
