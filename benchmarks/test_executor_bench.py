"""Benchmarks for the execution layer: vectorized sweep, cache, scheduler.

Times the two optimizations the :mod:`repro.exec` layer and the batched
optimizer deliver, asserting equality of results alongside the timing:

* the fully-vectorized ``(count-vector x tau0)`` grid sweep against the
  legacy per-vector loop, on the hardest (four-level) system B;
* a reduced Figure 2 through the scenario scheduler at ``workers=1`` vs.
  ``workers=4`` (on a single-CPU container the pool adds overhead and
  wins nothing — the bench is the honesty check, the equality assertion
  is the point);
* cold vs. warm optimization cache on the same reduced Figure 2.
"""

from __future__ import annotations

import pytest

from repro.core import DauweModel, sweep_plans
from repro.exec import OptimizationCache, set_active_cache
from repro.experiments import figure2
from repro.systems import get_system

_FIG2_KW = dict(
    trials=10, seed=0, systems=("D1", "D5", "B"), techniques=("dauwe", "moody")
)


@pytest.fixture(autouse=True)
def _no_active_cache():
    previous = set_active_cache(None)
    yield
    set_active_cache(previous)


def test_sweep_vectorized_grid(benchmark):
    model = DauweModel(get_system("B"))
    res = benchmark.pedantic(lambda: sweep_plans(model), rounds=3, iterations=1)
    assert res.evaluations > 10_000


def test_sweep_per_vector_loop(benchmark):
    model = DauweModel(get_system("B"))
    res = benchmark.pedantic(
        lambda: sweep_plans(model, grid_eval=False), rounds=3, iterations=1
    )
    # The two paths must agree exactly; the timing delta is the win.
    assert res == sweep_plans(model)


def test_figure2_reduced_serial(benchmark):
    result = benchmark.pedantic(
        lambda: figure2.run(workers=1, **_FIG2_KW), rounds=1, iterations=1
    )
    assert len(result.rows) == 6


def test_figure2_reduced_scenario_pool(benchmark):
    serial = figure2.run(workers=1, **_FIG2_KW)
    result = benchmark.pedantic(
        lambda: figure2.run(workers=4, **_FIG2_KW), rounds=1, iterations=1
    )
    assert result.rows == serial.rows


def test_figure2_reduced_warm_cache(benchmark, tmp_path):
    cache = OptimizationCache(tmp_path)
    set_active_cache(cache)
    cold = figure2.run(workers=1, **_FIG2_KW)
    before = cache.stats.snapshot()
    warm = benchmark.pedantic(
        lambda: figure2.run(workers=1, **_FIG2_KW), rounds=1, iterations=1
    )
    delta = cache.stats.delta(before)
    assert delta.misses == 0 and delta.hits == len(_FIG2_KW["systems"]) * 2
    assert warm.rows == cold.rows
