"""Bench: Figure 6 — prediction-error structure across techniques.

Asserted paper shape (Section IV-G): on the hard half of the Figure-4
grid, Di's model (restart failures ignored) errs *high* relative to
Moody's (escalating restarts, pessimistic), and the paper's model stays
closest to zero on average.  Exact magnitudes (-7% / +14%) belong to the
full 200-trial run in EXPERIMENTS.md.
"""

from __future__ import annotations

import statistics

import pytest
from conftest import show

from repro.experiments import figure6
from repro.experiments.records import ExperimentResult
from repro.experiments.runner import evaluate_technique
from repro.systems import TEST_SYSTEMS

TRIALS = 12
SCENARIOS = [(20.0, 15.0), (20.0, 6.0), (30.0, 6.0), (10.0, 15.0)]


def run_sample(trials):
    base = TEST_SYSTEMS["B"]
    rows = []
    for cost, mtbf in SCENARIOS:
        spec = base.with_mtbf(mtbf).with_top_level_cost(cost)
        for tech in ("dauwe", "di", "moody"):
            out = evaluate_technique(spec, tech, trials=trials, seed=0)
            rows.append(
                {
                    "cL (min)": cost,
                    "MTBF (min)": mtbf,
                    "technique": tech,
                    "error": out.prediction_error,
                }
            )
    return ExperimentResult(
        experiment_id="figure6-bench",
        title="Prediction error sample",
        caption="hard-half scenarios of the Figure 4 grid",
        columns=[
            ("cL (min)", "g"),
            ("MTBF (min)", "g"),
            ("technique", None),
            ("error", "+.4f"),
        ],
        rows=rows,
        parameters={"trials": trials},
    )


@pytest.fixture(scope="module")
def result():
    return run_sample(TRIALS)


def errors(result, tech):
    return [r["error"] for r in result.rows if r["technique"] == tech]


def test_figure6_derivation(benchmark, result):
    # Time the cheap derivation path (sorting/formatting) on stub data.
    stub = ExperimentResult(
        experiment_id="figure4",
        title="t",
        caption="c",
        columns=[],
        rows=[
            {"cL (min)": 10.0, "MTBF (min)": float(m), "technique": t, "error": 0.01 * m}
            for m in range(1, 21)
            for t in ("dauwe", "di", "moody")
        ],
    )
    derived = benchmark(figure6.from_figure4, stub)
    show(result)
    assert len(derived.rows) == 20
    # Shape checks re-validated so `--benchmark-only` exercises them.
    test_di_errs_higher_than_moody(result)
    test_di_overestimates_on_average(result)
    test_dauwe_mean_error_competitive(result)


def test_di_errs_higher_than_moody(result):
    assert statistics.mean(errors(result, "di")) > statistics.mean(
        errors(result, "moody")
    )


def test_di_overestimates_on_average(result):
    assert statistics.mean(errors(result, "di")) > 0.0


def test_dauwe_mean_error_competitive(result):
    dauwe = abs(statistics.mean(errors(result, "dauwe")))
    di = abs(statistics.mean(errors(result, "di")))
    assert dauwe <= di + 0.02
