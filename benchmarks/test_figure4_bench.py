"""Bench: Figure 4 — exascale scaling of the 1440-minute application.

Asserted paper shape (Section IV-E): MTBF dominates the PFS cost; the
3-minute MTBF collapses efficiency below 1% for costs above 10 minutes;
a 15-minute MTBF already drops below 50% for costs above 10 minutes.

The bench sweeps a 2x2 corner sample of the full 5x4 grid (the full grid
is EXPERIMENTS.md material); dauwe/di/moody only, like the paper.
"""

from __future__ import annotations

import pytest
from conftest import BENCH_TRIALS, show

from repro.experiments.records import ExperimentResult
from repro.experiments.runner import BREAKDOWN_TECHNIQUES, evaluate_technique
from repro.systems import TEST_SYSTEMS


def corner_grid():
    base = TEST_SYSTEMS["B"]
    for cost in (10.0, 40.0):
        for mtbf in (26.0, 15.0, 3.0):
            yield base.with_mtbf(mtbf).with_top_level_cost(cost).renamed(
                f"B[mtbf={mtbf:g},cL={cost:g}]"
            )


def run_corners(trials):
    rows = []
    for spec in corner_grid():
        for tech in BREAKDOWN_TECHNIQUES:
            out = evaluate_technique(spec, tech, trials=trials, seed=0)
            rows.append(
                {
                    "cL (min)": spec.checkpoint_times[-1],
                    "MTBF (min)": spec.mtbf,
                    "technique": tech,
                    "sim efficiency": out.simulated_efficiency,
                    "predicted": out.predicted_efficiency,
                    "error": out.prediction_error,
                }
            )
    return ExperimentResult(
        experiment_id="figure4-bench",
        title="Figure 4 corner sample",
        caption="2 costs x 3 MTBFs x 3 techniques",
        columns=[
            ("cL (min)", "g"),
            ("MTBF (min)", "g"),
            ("technique", None),
            ("sim efficiency", ".4f"),
            ("predicted", ".4f"),
            ("error", "+.4f"),
        ],
        rows=rows,
        parameters={"trials": trials},
    )


@pytest.fixture(scope="module")
def result():
    return run_corners(BENCH_TRIALS)


def cell(result, cost, mtbf, tech):
    return next(
        r
        for r in result.rows
        if r["cL (min)"] == cost and r["MTBF (min)"] == mtbf and r["technique"] == tech
    )


def test_figure4_regeneration(benchmark, result):
    benchmark.pedantic(run_corners, kwargs=dict(trials=2), rounds=1, iterations=1)
    show(result)
    assert len(result.rows) == 18
    # Shape checks re-validated so `--benchmark-only` exercises them.
    test_mtbf_dominates_cost(result)
    test_three_minute_mtbf_collapses(result)
    test_fifteen_minute_mtbf_below_half(result)
    test_easiest_corner_above_40_percent(result)


def test_mtbf_dominates_cost(result):
    # Shrinking MTBF 26 -> 3 hurts far more than growing cost 10 -> 40.
    for tech in BREAKDOWN_TECHNIQUES:
        mtbf_drop = (
            cell(result, 10.0, 26.0, tech)["sim efficiency"]
            - cell(result, 10.0, 3.0, tech)["sim efficiency"]
        )
        cost_drop = (
            cell(result, 10.0, 26.0, tech)["sim efficiency"]
            - cell(result, 40.0, 26.0, tech)["sim efficiency"]
        )
        assert mtbf_drop > cost_drop, tech


def test_three_minute_mtbf_collapses(result):
    for tech in BREAKDOWN_TECHNIQUES:
        assert cell(result, 40.0, 3.0, tech)["sim efficiency"] < 0.01, tech


def test_fifteen_minute_mtbf_below_half(result):
    for tech in BREAKDOWN_TECHNIQUES:
        assert cell(result, 40.0, 15.0, tech)["sim efficiency"] < 0.5, tech


def test_easiest_corner_above_40_percent(result):
    for tech in ("dauwe", "moody"):
        assert cell(result, 10.0, 26.0, tech)["sim efficiency"] > 0.4, tech
