"""Bench: Figure 5 — the 30-minute application skips level-L checkpoints.

Asserted paper shape (Section IV-F): techniques that model application
length (dauwe, di) omit level-L checkpoints in every scenario of this
grid and beat the length-blind Moody model (by up to ~20 points in the
paper); Moody still performs level-L checkpoints with intervals
"appropriate only for longer running applications".
"""

from __future__ import annotations

import pytest
from conftest import show

from repro.experiments import figure5

# Figure 5 trials are cheap (T_B = 30); afford a few more than default.
TRIALS = 30


@pytest.fixture(scope="module")
def result():
    return figure5.run(trials=TRIALS, seed=0)


def rows(result, tech):
    return [r for r in result.rows if r["technique"] == tech]


def test_figure5_regeneration(benchmark, result):
    benchmark.pedantic(
        figure5.run,
        kwargs=dict(trials=2, seed=1, techniques=("dauwe",)),
        rounds=1,
        iterations=1,
    )
    show(result)
    assert len(result.rows) == 10 * 3
    # Shape checks re-validated so `--benchmark-only` exercises them.
    test_length_aware_techniques_skip_level_l(result)
    test_moody_still_takes_level_l(result)
    test_dauwe_beats_moody(result)
    test_improvement_reaches_double_digits(result)
    test_skippers_trade_variance_for_mean(result)


def test_length_aware_techniques_skip_level_l(result):
    for tech in ("dauwe", "di"):
        assert all(r["skips level-L"] == "yes" for r in rows(result, tech)), tech


def test_moody_still_takes_level_l(result):
    assert all(r["skips level-L"] == "no" for r in rows(result, "moody"))


def test_dauwe_beats_moody(result):
    wins = 0
    for d, m in zip(rows(result, "dauwe"), rows(result, "moody")):
        if d["sim efficiency"] > m["sim efficiency"]:
            wins += 1
    assert wins >= 8  # of 10 scenarios (sampling noise tolerance)


def test_improvement_reaches_double_digits(result):
    gaps = [
        d["sim efficiency"] - m["sim efficiency"]
        for d, m in zip(rows(result, "dauwe"), rows(result, "moody"))
    ]
    assert max(gaps) > 0.10  # paper: up to ~20 points


def test_skippers_trade_variance_for_mean(result):
    # Paper: the skipping techniques show slightly larger stds than Moody
    # in the scenarios where they skipped; compare grid-average stds.
    mean_std = lambda tech: sum(r["std"] for r in rows(result, tech)) / 10
    assert mean_std("dauwe") > 0.5 * mean_std("moody")
