"""Ablation benches for the design choices DESIGN.md calls out.

Quantifies, on the paper's own systems:

1. how much of the Dauwe model's predicted time comes from the failed
   checkpoint/restart terms it champions (Sections IV-D, IV-G);
2. the cost of Moody's escalating-restart assumption, measured in the
   *simulator* by flipping the restart semantics;
3. the literal-Eqn-4 "+1 top interval" reading vs. the corrected one;
4. level skipping on/off for the short application (Section IV-F).
"""

from __future__ import annotations

import pytest
from conftest import BENCH_TRIALS

from repro.core import CheckpointPlan, DauweModel
from repro.simulator import simulate_many
from repro.systems import TEST_SYSTEMS, get_system


def test_failed_cr_terms_share_of_prediction(benchmark):
    """The champion terms grow from negligible to dominant with difficulty."""

    def gaps():
        out = {}
        for name in ("D1", "D9"):
            spec = get_system(name)
            plan = DauweModel(spec).optimize().plan
            full = DauweModel(spec).predict_time(plan)
            ablated = DauweModel(
                spec,
                include_checkpoint_failures=False,
                include_restart_failures=False,
            ).predict_time(plan)
            out[name] = (full - ablated) / full
        return out

    share = benchmark.pedantic(gaps, rounds=1, iterations=1)
    print(f"\nfailed-C/R share of predicted time: {share}")
    assert share["D9"] > 5 * share["D1"]
    assert share["D9"] > 0.10


def test_escalation_semantics_cost(benchmark):
    """Escalating restarts measurably slow the hard systems in simulation."""
    spec = get_system("D9")
    plan = DauweModel(spec).optimize().plan

    def run(semantics):
        return simulate_many(
            spec, plan, trials=BENCH_TRIALS, seed=5, restart_semantics=semantics
        ).mean_efficiency

    retry = benchmark.pedantic(run, args=("retry",), rounds=1, iterations=1)
    escalate = run("escalate")
    print(f"\nretry eff={retry:.4f} escalate eff={escalate:.4f}")
    assert escalate <= retry + 0.02


def test_final_interval_reading(benchmark):
    """Literal Eqn-4 '+1 top interval' overprices exactly one interval."""
    spec = TEST_SYSTEMS["B"]
    plan = CheckpointPlan((1, 2, 3, 4), 12.0, (1, 1, 3))

    def both():
        corrected = DauweModel(spec, final_interval_plus_one=False).predict_time(plan)
        literal = DauweModel(spec, final_interval_plus_one=True).predict_time(plan)
        return corrected, literal

    corrected, literal = benchmark(both)
    extra = literal - corrected
    top_interval = 12.0 * 2 * 2 * 4
    assert extra == pytest.approx(top_interval, rel=0.25)


def test_recheckpoint_policy_cost(benchmark):
    """Physically re-taking destroyed checkpoints ("paid") costs real
    efficiency that no analytic model prices; "free" matches the models'
    world (DESIGN.md decision); "skip" deepens rollbacks instead."""
    spec = get_system("D8")
    plan = DauweModel(spec).optimize().plan

    def run(policy):
        return simulate_many(
            spec, plan, trials=BENCH_TRIALS, seed=17, recheckpoint=policy
        ).mean_efficiency

    free = benchmark.pedantic(run, args=("free",), rounds=1, iterations=1)
    paid = run("paid")
    skip = run("skip")
    print(f"\nfree={free:.4f} paid={paid:.4f} skip={skip:.4f}")
    assert paid < free + 0.01
    assert skip < free + 0.01


def test_level_skipping_benefit_short_app(benchmark):
    """Section IV-F: disallowing skipping hurts the 30-minute application."""
    spec = (
        TEST_SYSTEMS["B"].with_baseline_time(30.0).with_mtbf(15.0).with_top_level_cost(20.0)
    )

    def run(allow):
        res = DauweModel(spec, allow_level_skipping=allow).optimize()
        stats = simulate_many(
            spec,
            res.plan,
            trials=40,
            seed=9,
            checkpoint_at_completion=not allow,
        )
        return res.plan, stats.mean_efficiency

    plan_skip, eff_skip = benchmark.pedantic(
        run, args=(True,), rounds=1, iterations=1
    )
    plan_full, eff_full = run(False)
    print(f"\nskip: {plan_skip.describe()} eff={eff_skip:.3f}")
    print(f"full: {plan_full.describe()} eff={eff_full:.3f}")
    assert plan_skip.top_level < 4
    assert plan_full.top_level == 4
    assert eff_skip > eff_full
