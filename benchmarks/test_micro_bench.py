"""Micro-benchmarks: model evaluation, optimizer, simulator, erasure codes.

These track the performance characteristics the experiment harness relies
on: vectorized model evaluation (thousands of candidate plans per sweep),
the per-event cost of the trial simulator, and the erasure-coding
substrate's throughput.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CheckpointPlan, DauweModel
from repro.models import MoodyModel
from repro.simulator import simulate_many, simulate_trial
from repro.storage import ReedSolomonCode, XorPartnerCode
from repro.systems import get_system


@pytest.fixture(scope="module")
def system_b():
    return get_system("B")


def test_dauwe_batch_evaluation(benchmark, system_b):
    model = DauweModel(system_b)
    taus = np.geomspace(0.1, 1000.0, 256)
    out = benchmark(model.predict_time_batch, (1, 2, 3, 4), (1, 2, 3), taus)
    assert out.shape == (256,)


def test_dauwe_scalar_evaluation(benchmark, system_b):
    model = DauweModel(system_b)
    plan = CheckpointPlan((1, 2, 3, 4), 10.0, (1, 2, 3))
    t = benchmark(model.predict_time, plan)
    assert t > system_b.baseline_time


def test_moody_batch_evaluation(benchmark, system_b):
    model = MoodyModel(system_b)
    taus = np.geomspace(0.1, 300.0, 256)
    out = benchmark(model.pattern_efficiency_batch, (1, 2, 3, 4), (1, 2, 3), taus)
    assert out.shape == (256,)


def test_optimizer_two_level_system(benchmark):
    spec = get_system("D4")
    res = benchmark.pedantic(
        lambda: DauweModel(spec).optimize(), rounds=3, iterations=1
    )
    assert res.predicted_efficiency > 0.5


def test_simulator_easy_trial(benchmark, system_b):
    plan = DauweModel(system_b).optimize().plan
    r = benchmark(simulate_trial, system_b, plan, 7)
    assert r.completed


@pytest.mark.parametrize("engine", ["scalar", "batch"])
def test_simulator_many_engines(benchmark, system_b, engine):
    # A figure2-sized batch on each engine; the ratio of these two cases
    # is the speedup `python -m repro bench` records in its grid.
    plan = DauweModel(system_b).optimize().plan
    stats = benchmark.pedantic(
        simulate_many,
        args=(system_b, plan, 200, 0),
        kwargs=dict(engine=engine),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert stats.trials == 200


def test_simulator_failure_storm(benchmark):
    # The Figure-4 worst case: tiny MTBF, huge PFS cost, capped horizon.
    spec = get_system("B").with_mtbf(3.0).with_top_level_cost(40.0)
    plan = CheckpointPlan((1, 2, 3, 4), 1.0, (1, 1, 12))
    r = benchmark.pedantic(
        simulate_trial,
        args=(spec, plan, 11),
        kwargs=dict(max_time=5000.0),
        rounds=3,
        iterations=1,
    )
    assert not r.completed
    assert r.total_failures > 500


def test_reed_solomon_encode_throughput(benchmark):
    rng = np.random.default_rng(0)
    code = ReedSolomonCode(8, 2)
    shards = rng.integers(0, 256, size=(8, 1 << 16), dtype=np.uint8)  # 512 KiB
    parity = benchmark(code.encode, shards)
    assert parity.shape == (2, 1 << 16)


def test_xor_encode_throughput(benchmark):
    rng = np.random.default_rng(1)
    code = XorPartnerCode(8)
    shards = rng.integers(0, 256, size=(64, 1 << 16), dtype=np.uint8)  # 4 MiB
    parity = benchmark(code.encode, shards)
    assert parity.shape == (8, 1 << 16)


def test_reed_solomon_recover(benchmark):
    rng = np.random.default_rng(2)
    code = ReedSolomonCode(8, 2)
    data = rng.integers(0, 256, size=(8, 1 << 14), dtype=np.uint8)
    parity = code.encode(data)
    shards = {i: data[i] for i in range(2, 8)}
    shards.update({8: parity[0], 9: parity[1]})
    out = benchmark(code.recover, shards)
    assert np.array_equal(out, data)
