#!/usr/bin/env python
"""When should a short application skip the PFS checkpoint level?

Reproduces the paper's Section IV-F insight in miniature: for an
application whose runtime is shorter than the mean time between the
highest-severity failures, it is more efficient *on average* to take no
level-L checkpoints at all and risk a full restart.  Length-aware models
(the paper's, Di's) discover this; steady-state models (Moody's) keep
paying for level-L checkpoints sized for infinite runs.

The script sweeps the application length and reports, per length, the
plan the paper's model picks, whether it skips the top level, and the
measured efficiency against a forced-full-protocol alternative.

Run:  python examples/short_application.py
"""

from __future__ import annotations

from repro.core import DauweModel
from repro.experiments.records import format_table
from repro.simulator import simulate_many
from repro.systems import get_system


def main() -> None:
    # Exascale-flavoured scenario: system B with a 15-minute MTBF and a
    # 20-minute PFS checkpoint (one cell of the paper's Figure 5 grid).
    base = get_system("B").with_mtbf(15.0).with_top_level_cost(20.0)
    sev4_mtbf = base.mtbf_of_level(4)
    print(f"Scenario: {base.summary()}")
    print(f"Mean time between severity-4 failures: {sev4_mtbf:.0f} min\n")

    rows = []
    for t_b in (15.0, 30.0, 120.0, 480.0, 1440.0):
        spec = base.with_baseline_time(t_b)

        free_choice = DauweModel(spec).optimize()
        forced_full = DauweModel(spec, allow_level_skipping=False).optimize()

        eff_free = simulate_many(spec, free_choice.plan, trials=120, seed=5)
        eff_full = simulate_many(
            spec, forced_full.plan, trials=120, seed=5,
            checkpoint_at_completion=True,
        )
        rows.append(
            {
                "T_B (min)": t_b,
                "skips L4": "yes" if free_choice.plan.top_level < 4 else "no",
                "chosen plan": free_choice.plan.describe(),
                "eff (chosen)": eff_free.mean_efficiency,
                "eff (forced full)": eff_full.mean_efficiency,
                "gain": eff_free.mean_efficiency - eff_full.mean_efficiency,
            }
        )

    print(
        format_table(
            [
                ("T_B (min)", "g"),
                ("skips L4", None),
                ("eff (chosen)", ".4f"),
                ("eff (forced full)", ".4f"),
                ("gain", "+.4f"),
                ("chosen plan", None),
            ],
            rows,
        )
    )
    print(
        "\nApplications much shorter than the severity-4 failure horizon "
        f"({sev4_mtbf:.0f} min) skip level-4 checkpoints and win; as T_B "
        "grows past it, the full protocol takes over (Section IV-F)."
    )


if __name__ == "__main__":
    main()
