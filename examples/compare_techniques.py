#!/usr/bin/env python
"""Compare all five interval-selection techniques on one system.

A miniature of the paper's Figure 2: every technique (the paper's model,
Di et al., Moody et al., Benoit et al., and classic Daly) optimizes its
own checkpoint intervals for the chosen Table-I system, then the
simulator measures each choice under identical conditions.

Run:  python examples/compare_techniques.py [SYSTEM] [TRIALS]
      python examples/compare_techniques.py D5 100
"""

from __future__ import annotations

import sys

from repro.experiments import DEFAULT_TECHNIQUES, evaluate_technique
from repro.experiments.records import format_table
from repro.systems import get_system


def main(argv: list[str]) -> None:
    system_name = argv[1] if len(argv) > 1 else "D4"
    trials = int(argv[2]) if len(argv) > 2 else 60
    system = get_system(system_name)
    print(f"Comparing techniques on {system.summary()}")
    print(f"({trials} simulation trials per technique)\n")

    rows = []
    for tech in DEFAULT_TECHNIQUES:
        out = evaluate_technique(system, tech, trials=trials, seed=7)
        rows.append(
            {
                "technique": tech,
                "chosen plan": out.plan,
                "sim eff": out.simulated_efficiency,
                "std": out.simulated_std,
                "predicted": out.predicted_efficiency,
                "error": out.prediction_error,
            }
        )
    rows.sort(key=lambda r: -r["sim eff"])
    print(
        format_table(
            [
                ("technique", None),
                ("sim eff", ".4f"),
                ("std", ".4f"),
                ("predicted", ".4f"),
                ("error", "+.4f"),
                ("chosen plan", None),
            ],
            rows,
        )
    )
    best, worst = rows[0], rows[-1]
    print(
        f"\n{best['technique']} delivered the best measured efficiency; "
        f"the gap to {worst['technique']} is "
        f"{best['sim eff'] - worst['sim eff']:.4f}."
    )
    print(
        "Note how Daly's prediction is accurate even when its single-level "
        "protocol loses, and how optimistic models pick over-long intervals "
        "(Sections IV-C, IV-G of the paper)."
    )


if __name__ == "__main__":
    main(sys.argv)
