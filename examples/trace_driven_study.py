#!/usr/bin/env python
"""Trace-driven study: fit a system model from a failure log, then plan.

Field studies (Blue Waters [3], LANL logs) are where the paper's failure
rates come from.  This example closes that loop with the package's trace
tooling:

1. synthesize a months-long failure log for a machine (stand-in for a
   real, non-redistributable log);
2. fit per-severity exponential rates back from the log and test the
   exponential assumption (Kolmogorov-Smirnov on the gaps);
3. build a SystemSpec from the fit, optimize intervals with the paper's
   model, and validate by replaying fresh traces through the simulator;
4. repeat with a *bursty* (Weibull, shape < 1) log to see the fit detect
   the violated assumption.

Run:  python examples/trace_driven_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DauweModel
from repro.failures import (
    TraceFailureSource,
    exponential_ks_test,
    fit_weibull,
    spec_from_trace,
    synthesize_trace,
)
from repro.simulator import simulate_trial
from repro.systems import get_system


def main() -> None:
    truth = get_system("D2")  # ground-truth rates the "field log" follows
    horizon = 90 * 24 * 60.0  # a 90-day log, minutes

    # ------------------------------------------------------------------
    # 1-2. Synthesize and fit.
    # ------------------------------------------------------------------
    log = synthesize_trace(truth.level_rates, horizon, rng=1)
    print(
        f"Synthesized log: {len(log)} failures over {horizon / (24 * 60):.0f} days, "
        f"empirical MTBF {log.empirical_mtbf():.2f} min "
        f"(truth: {truth.mtbf:.2f} min)"
    )
    p = exponential_ks_test(log.interarrival_times())
    print(f"KS test for exponential gaps: p = {p:.3f} (exponential holds)")

    fitted = spec_from_trace(
        "fitted-D2", log, truth.checkpoint_times, truth.baseline_time
    )
    print(f"Fitted system: {fitted.summary()}\n")

    # ------------------------------------------------------------------
    # 3. Optimize on the fit, validate on fresh held-out traces.
    # ------------------------------------------------------------------
    result = DauweModel(fitted).optimize()
    print(f"Plan from fitted model : {result.plan.describe()}")
    print(f"Predicted efficiency   : {result.predicted_efficiency:.4f}")

    effs = []
    for seed in range(40):
        fresh = synthesize_trace(truth.level_rates, 20_000.0, rng=100 + seed)
        r = simulate_trial(
            truth,
            result.plan,
            source=TraceFailureSource(list(fresh.times), list(fresh.severities)),
        )
        effs.append(r.efficiency)
    print(
        f"Replay on 40 held-out traces of the *true* system: "
        f"{np.mean(effs):.4f} +- {np.std(effs):.4f}\n"
    )

    # ------------------------------------------------------------------
    # 4. A bursty machine violates the exponential assumption.
    # ------------------------------------------------------------------
    bursty = synthesize_trace(truth.level_rates, horizon, rng=2, weibull_shape=0.6)
    fit = fit_weibull(bursty.interarrival_times())
    p_bad = exponential_ks_test(bursty.interarrival_times())
    print(
        f"Bursty log: Weibull MLE shape = {fit.shape:.2f} "
        f"({'bursty' if fit.is_bursty else 'regular'}), "
        f"exponential KS p = {p_bad:.2e}"
    )
    print(
        "A shape this far below 1 rejects the exponential assumption the "
        "analytic models share; use WeibullFailureSource in the simulator "
        "to study the gap."
    )


if __name__ == "__main__":
    main()
