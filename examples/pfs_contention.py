#!/usr/bin/env python
"""PFS write contention, modeled with the package's DES engine.

Section IV-E of the paper assumes PFS checkpoint times of 10-40 minutes
for exascale applications and notes that high-level checkpoints contend
for a single shared file system.  This example uses :mod:`repro.des` —
the process-oriented discrete-event engine underlying the reference
simulator — directly, to show where such numbers come from: several jobs
checkpoint periodically into a PFS that admits a bounded number of
concurrent writers, and queueing inflates the effective checkpoint time.

Run:  python examples/pfs_contention.py
"""

from __future__ import annotations

import numpy as np

from repro.des import Environment, Resource


def run_scenario(num_jobs: int, writers: int, horizon_min: float = 2880.0):
    """Simulate ``num_jobs`` jobs sharing a PFS with ``writers`` slots.

    Each job writes a checkpoint every ~60 minutes; an uncontended write
    takes 12 minutes of PFS service.  Returns per-write total latencies
    (queueing + service), the quantity a SystemSpec's ``delta_L`` should
    reflect.
    """
    env = Environment()
    pfs = Resource(env, capacity=writers)
    rng = np.random.default_rng(7)
    latencies: list[float] = []

    def job(env, jitter):
        yield env.timeout(jitter)  # desynchronize job start
        while True:
            yield env.timeout(rng.uniform(50.0, 70.0))  # compute phase
            arrival = env.now
            req = pfs.request()
            yield req
            yield env.timeout(12.0)  # uncontended PFS service time
            pfs.release()
            latencies.append(env.now - arrival)

    for j in range(num_jobs):
        env.process(job(env, jitter=5.0 * j))
    env.run(until=horizon_min)
    return np.array(latencies)


def main() -> None:
    print("Effective PFS checkpoint latency vs. machine sharing")
    print("(12-minute uncontended write, jobs checkpointing hourly)\n")
    print(f"{'jobs':>5} {'writers':>8} {'writes':>7} {'mean (min)':>11} "
          f"{'p95 (min)':>10} {'slowdown':>9}")
    for num_jobs, writers in [(2, 2), (4, 2), (8, 2), (16, 2), (8, 4), (16, 4)]:
        lat = run_scenario(num_jobs, writers)
        mean = lat.mean()
        p95 = float(np.percentile(lat, 95))
        print(
            f"{num_jobs:>5} {writers:>8} {lat.size:>7} {mean:>11.2f} "
            f"{p95:>10.2f} {mean / 12.0:>8.2f}x"
        )
    print(
        "\nOversubscribed file systems inflate delta_L well past the raw "
        "write time — one reason the paper sweeps level-L costs up to 40 "
        "minutes (Section IV-E). Feed the inflated figure into "
        "SystemSpec.with_top_level_cost() to study the effect on intervals."
    )


if __name__ == "__main__":
    main()
