#!/usr/bin/env python
"""From a hardware description to an optimized multilevel protocol.

The paper's Table I gives per-level checkpoint costs as inputs.  This
example derives them instead: describe the machine (node count, image
size, bandwidths), stack the four classic storage levels (node-local,
XOR partner, Reed-Solomon group, PFS), and the storage substrate prices
each level; the result feeds straight into the paper's model and the
simulator.  Along the way it *demonstrates* the redundancy the two
encoded levels rely on, by actually encoding data and recovering it from
erasures with the package's GF(256) Reed-Solomon and XOR codes.

Run:  python examples/design_from_hardware.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DauweModel
from repro.simulator import simulate_many
from repro.storage import (
    LevelKind,
    MachineSpec,
    ReedSolomonCode,
    StorageLevel,
    XorPartnerCode,
    build_system_spec,
)


def demonstrate_encodings() -> None:
    """Show the level-2/level-3 redundancy actually working."""
    rng = np.random.default_rng(42)

    print("Level-2 redundancy (XOR partner groups, SCR style):")
    xor = XorPartnerCode(group_size=4)
    node_images = rng.integers(0, 256, size=(4, 1024), dtype=np.uint8)
    parity = xor.encode(node_images)
    dead = 2
    rebuilt = xor.recover(np.delete(node_images, dead, axis=0), parity[0])
    ok = np.array_equal(rebuilt, node_images[dead])
    print(f"  node {dead} lost -> rebuilt from 3 partners + parity: {ok}")

    print("Level-3 redundancy (Reed-Solomon over GF(256), FTI style):")
    rs = ReedSolomonCode(data_shards=8, parity_shards=2)
    group = rng.integers(0, 256, size=(8, 1024), dtype=np.uint8)
    rs_parity = rs.encode(group)
    shards = {i: group[i] for i in range(8)}
    shards.update({8: rs_parity[0], 9: rs_parity[1]})
    for lost in (1, 6):  # two simultaneous node losses
        del shards[lost]
    restored = rs.recover(shards)
    print(
        "  nodes 1 and 6 lost simultaneously -> group rebuilt: "
        f"{np.array_equal(restored, group)}"
    )
    print()


def main() -> None:
    demonstrate_encodings()

    machine = MachineSpec(
        nodes=50_000,
        checkpoint_gb_per_node=4.0,
        local_write_gb_s=2.0,
        network_gb_s=1.0,
        encode_gb_s=0.6,
        pfs_aggregate_gb_s=1500.0,
        pfs_latency_s=30.0,
    )
    levels = [
        StorageLevel(LevelKind.LOCAL, failure_rate=2.0e-3),
        StorageLevel(LevelKind.PARTNER, failure_rate=8.0e-4, group_size=4),
        StorageLevel(LevelKind.RS, failure_rate=2.0e-4, group_size=8, parity_shards=2),
        StorageLevel(LevelKind.PFS, failure_rate=5.0e-5),
    ]
    spec = build_system_spec(
        "derived-50k",
        machine,
        levels,
        baseline_time=1440.0,
        description="4-level hierarchy derived from a 50k-node machine",
    )

    print(f"Derived system: {spec.summary()}")
    print("Per-level costs and redundancy:")
    for i, lv in enumerate(levels, start=1):
        print(
            f"  L{i} {lv.kind.value:<13} delta={spec.checkpoint_time(i):7.3f} min  "
            f"storage overhead={lv.storage_overhead():4.2f}x  "
            f"MTBF={1 / lv.failure_rate:8.0f} min"
        )
    print()

    result = DauweModel(spec).optimize()
    print(f"Optimized plan: {result.plan.describe()}")
    print(f"Predicted efficiency: {result.predicted_efficiency:.4f}")
    stats = simulate_many(spec, result.plan, trials=80, seed=11)
    print(
        f"Simulated efficiency: {stats.mean_efficiency:.4f} "
        f"+- {stats.std_efficiency:.4f} (80 trials)"
    )


if __name__ == "__main__":
    main()
