#!/usr/bin/env python
"""Quickstart: optimize checkpoint intervals and validate them by simulation.

This walks the paper's core loop on test system B (a four-level
BlueGene/Q-style machine running a 24-hour application):

1. build the paper's execution-time model for the system;
2. optimize the checkpoint pattern (computation interval tau0 plus the
   per-level checkpoint counts);
3. inspect where the model thinks time will go;
4. check the prediction against the failure-injecting simulator;
5. re-optimize for a different objective — availability (useful-work
   fraction) instead of makespan.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DauweModel, get_system, simulate_many
from repro.systems.stress import get_stress_system


def main() -> None:
    system = get_system("B")
    print(f"System under study: {system.summary()}")
    print(f"  ({system.description})")
    print()

    # ------------------------------------------------------------------
    # 1-2. Model + interval optimization (Section III of the paper).
    # ------------------------------------------------------------------
    model = DauweModel(system)
    result = model.optimize()
    plan = result.plan
    print("Optimized checkpoint plan:")
    print(f"  {plan.describe()}")
    print(f"  predicted execution time : {result.predicted_time:8.1f} min")
    print(f"  predicted efficiency     : {result.predicted_efficiency:8.4f}")
    print(f"  candidate plans evaluated: {result.evaluations}")
    print()

    # ------------------------------------------------------------------
    # 3. Where does the model expect the time to go?
    # ------------------------------------------------------------------
    breakdown = model.predict_breakdown(plan)
    print("Predicted time breakdown (minutes):")
    for key, value in breakdown.items():
        if key != "total" and value > 1e-9:
            print(f"  {key:<18} {value:10.2f}")
    print()

    # ------------------------------------------------------------------
    # 4. Validate against the simulator (Section IV methodology).
    # ------------------------------------------------------------------
    trials = 100
    stats = simulate_many(system, plan, trials=trials, seed=2024)
    lo, hi = stats.confidence_interval()
    print(f"Simulated over {trials} failure-randomized trials:")
    print(f"  mean efficiency          : {stats.mean_efficiency:8.4f}")
    print(f"  std                      : {stats.std_efficiency:8.4f}")
    print(f"  95% CI                   : [{lo:.4f}, {hi:.4f}]")
    print(f"  mean failures per run    : {stats.mean_failures:8.1f}")
    print()
    gap = result.predicted_efficiency - stats.mean_efficiency
    print(f"Prediction error (predicted - simulated): {gap:+.4f}")
    if lo <= result.predicted_efficiency <= hi:
        print("The model's prediction sits inside the simulation CI.")
    print()

    # ------------------------------------------------------------------
    # 5. Optimize for availability instead of execution time.
    #
    # Every registered objective plugs into the same sweep:
    # optimize(objective="availability") maximizes the useful-work
    # fraction rather than minimizing makespan.  The chosen objective
    # rides along in the result (result.objective) and — for studies —
    # in the report parameters and the run manifest, where an
    # "objective" entry appears whenever it is not the default "time".
    # The CLI equivalent: python -m repro figure4 --objective availability
    # ------------------------------------------------------------------
    avail = model.optimize(objective="availability")
    print(f"Availability-optimal plan ({avail.objective} objective):")
    print(f"  {avail.plan.describe()}")
    print(f"  predicted availability   : {avail.predicted_efficiency:8.4f}")
    if avail.plan.describe() == plan.describe():
        print(
            "  (same plan as the time objective: for an application this\n"
            "   long the two objectives agree almost everywhere)"
        )

    # The objectives genuinely diverge when the application is short
    # relative to the failure horizon — a stress-catalog system shows it:
    blink = DauweModel(get_stress_system("blink-app"))
    t_opt = blink.optimize()
    a_opt = blink.optimize(objective="availability")
    print()
    print("Where the objectives disagree (stress system 'blink-app'):")
    print(f"  time-optimal plan        : {t_opt.plan.describe()}")
    print(f"  availability-optimal plan: {a_opt.plan.describe()}")


if __name__ == "__main__":
    main()
